"""The experiment service: store, queue, daemon, HTTP API (DESIGN.md §11).

Layer by layer, then end to end:

* :class:`ResultStore` — put/get round trips, idempotent duplicate
  puts, the conflict error naming its key, store location rules,
  legacy-tree import.
* :class:`JobQueue` — FIFO leasing, 429 backpressure at the bound,
  in-flight coalescing by ``result_key``, history trimming.
* :class:`Daemon` — store-first serving, execution, failure isolation.
* **HTTP end to end** — the byte-fidelity contract: a result computed
  by the service is payload-identical (meta stripped) to the same
  options run directly; N concurrent identical submissions execute
  exactly once (counted with a stub experiment).

Stub experiments register straight into the registry (the decorator's
``_REGISTRY`` wins over the module table) and are removed again by the
fixture, so nothing leaks into other tests.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

import pytest

from golden_opts import GOLDEN_OPTS
from repro.experiments.registry import (
    _REGISTRY,
    experiment,
    options_dict,
    run_experiment,
)
from repro.results import result_key, save_result
from repro.service import (
    Daemon,
    JobQueue,
    QueueFull,
    ResultStore,
    StoreConflictError,
)
from repro.service.api import ExperimentService
from repro.service.client import ServiceClient, ServiceError
from repro.service.store import STORE_FILENAME, locate_store
from repro.util.tables import Table

E1_TINY = dict(sizes=(16,), workloads=("balanced",), trials=6, seed=11,
               parallel=False)


def tiny_e1(**overrides):
    return run_experiment("e1", **{**E1_TINY, **overrides})


# ---------------------------------------------------------------------------
# Stub experiments: counted execution, controllable duration/failure
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StubOptions:
    trials: int = 2
    seed: int = 0
    sleep_s: float = 0.0
    fail: bool = False


class _Counter:
    """Thread-safe execution counter shared with the daemon thread."""

    def __init__(self):
        self.lock = threading.Lock()
        self.runs = 0
        self.release = threading.Event()
        self.release.set()

    def hit(self) -> int:
        with self.lock:
            self.runs += 1
            return self.runs


@pytest.fixture
def stub():
    """Register a counted stub experiment; unregister afterwards."""
    counter = _Counter()

    @experiment("zz_stub", options=StubOptions, title="stub", claim="none")
    def _run(opts: StubOptions) -> Table:
        n = counter.hit()
        if opts.fail:
            raise RuntimeError("stub asked to fail")
        if opts.sleep_s:
            time.sleep(opts.sleep_s)
        counter.release.wait(5.0)
        t = Table(headers=["trial", "value"], title="stub")
        for i in range(opts.trials):
            t.add_row(i, opts.seed + i)
        # The run count is *not* part of the payload: identical options
        # must stay payload-identical however often the stub runs.
        del n
        return t

    try:
        yield counter
    finally:
        _REGISTRY.pop("zz_stub", None)


def stub_key(**overrides) -> str:
    return result_key("zz_stub", options_dict(StubOptions(**overrides)))


# ---------------------------------------------------------------------------
# ResultStore
# ---------------------------------------------------------------------------

class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        result = tiny_e1()
        with ResultStore(tmp_path / "s.sqlite3") as store:
            assert store.put(result) is True
            assert result.key in store
            back = store.get(result.key)
            assert back.payload_json() == result.payload_json()
            assert back.to_json_dict() == result.to_json_dict()
            assert store.get_document(result.key) == result.to_json_dict()
            assert store.get("0" * 16) is None

    def test_duplicate_put_is_idempotent(self, tmp_path):
        result = tiny_e1()
        with ResultStore(tmp_path / "s.sqlite3") as store:
            assert store.put(result) is True
            assert store.put(result) is False  # identical payload: no-op
            assert store.stats()["results"] == 1

    def test_conflicting_payload_raises_naming_key(self, tmp_path):
        result = tiny_e1()
        rows = result.sections[0].rows
        tampered = dataclasses.replace(
            result,
            sections=(
                dataclasses.replace(
                    result.sections[0],
                    rows=rows[:-1] + ((rows[-1][0], -999.0)
                                      + rows[-1][2:],),
                ),
            ) + result.sections[1:],
        )
        assert tampered.key == result.key  # same options, same identity
        with ResultStore(tmp_path / "s.sqlite3") as store:
            store.put(result)
            with pytest.raises(StoreConflictError) as err:
                store.put(tampered)
            assert result.key in str(err.value)
            assert err.value.key == result.key
            # The original row survived the refused overwrite.
            assert store.get(result.key).payload_json() \
                == result.payload_json()

    def test_query_and_stats(self, tmp_path):
        a, b = tiny_e1(seed=1), tiny_e1(seed=2)
        with ResultStore(tmp_path / "s.sqlite3") as store:
            store.put(a)
            store.put(b)
            stats = store.stats()
            assert stats["results"] == 2
            assert stats["by_experiment"] == {"e1": 2}
            rows = store.query("e1")
            assert {r["result_key"] for r in rows} == {a.key, b.key}
            assert store.query("e9") == []
            assert set(store.keys()) == {a.key, b.key}

    def test_locate_store(self, tmp_path):
        db = tmp_path / "x.sqlite3"
        assert locate_store(db) == db  # a DB path, even before creation
        assert locate_store(tmp_path) is None  # dir without a store
        (tmp_path / STORE_FILENAME).touch()
        assert locate_store(tmp_path) == tmp_path / STORE_FILENAME

    def test_import_tree(self, tmp_path):
        tree = tmp_path / "loose"
        a, b = tiny_e1(seed=3), tiny_e1(seed=4)
        save_result(a, tree)
        save_result(b, tree / "nested")
        (tree / "broken.json").write_text("{not json", encoding="utf-8")
        (tree / "x-study.manifest.json").write_text("{}", encoding="utf-8")
        with ResultStore(tmp_path / "s.sqlite3") as store:
            store.put(a)  # one key already held: counted as skipped
            report = store.import_tree(tree)
            assert (report.imported, report.skipped, report.corrupt,
                    report.conflicts) == (1, 1, 1, 0)
            assert report.corrupt_files == [str(tree / "broken.json")]
            assert "imported=1" in report.summary()
            assert store.stats()["results"] == 2


# ---------------------------------------------------------------------------
# JobQueue
# ---------------------------------------------------------------------------

class TestJobQueue:
    def test_fifo_lease_order(self):
        q = JobQueue(maxsize=8)
        for i in range(3):
            q.submit("e1", {"seed": i}, f"key{i}")
        assert [q.lease(0).key for _ in range(3)] \
            == ["key0", "key1", "key2"]
        assert q.lease(0) is None

    def test_backpressure_raises_queue_full(self):
        q = JobQueue(maxsize=2)
        q.submit("e1", {}, "k1")
        q.submit("e1", {}, "k2")
        with pytest.raises(QueueFull):
            q.submit("e1", {}, "k3")
        assert q.stats()["rejected"] == 1
        # Leasing frees a slot; resubmission then succeeds.
        q.lease(0)
        job, created = q.submit("e1", {}, "k3")
        assert created and job.key == "k3"

    def test_inflight_submissions_coalesce_by_key(self):
        q = JobQueue(maxsize=8)
        first, created = q.submit("e1", {"seed": 1}, "samekey")
        assert created
        second, created = q.submit("e1", {"seed": 1}, "samekey")
        assert not created and second is first
        assert first.subscribers == 2
        assert q.stats()["coalesced"] == 1
        # Still coalesces while running...
        leased = q.lease(0)
        assert leased is first and first.state == "running"
        third, created = q.submit("e1", {"seed": 1}, "samekey")
        assert not created and third is first
        # ...but a finished job no longer absorbs submissions.
        q.complete(first)
        assert first.wait(0)
        fresh, created = q.submit("e1", {"seed": 1}, "samekey")
        assert created and fresh is not first

    def test_failed_job_records_error(self):
        q = JobQueue(maxsize=2)
        job, _ = q.submit("e1", {}, "k")
        q.lease(0)
        q.fail(job, "boom")
        assert job.state == "failed" and job.error == "boom"
        doc = job.to_json_dict()
        assert doc["state"] == "failed" and doc["error"] == "boom"
        assert doc["queue_wait_s"] is not None
        assert doc["run_wall_s"] is not None

    def test_history_trims_terminal_jobs_only(self):
        q = JobQueue(maxsize=64, history=4)
        keep, _ = q.submit("e1", {}, "keep")  # stays queued throughout
        done_ids = []
        for i in range(6):
            job, _ = q.submit("e1", {}, f"k{i}")
            done_ids.append(job.id)
            # lease() pops FIFO: drain until this job is the one leased.
            while (leased := q.lease(0)) is not None:
                if leased is job:
                    q.complete(job)
                    break
        ids = [j.id for j in q.jobs()]
        assert keep.id in ids  # queued jobs are never trimmed
        assert len(ids) <= 5
        assert q.get(done_ids[0]) is None  # oldest terminal job dropped
        assert q.get(done_ids[-1]) is not None


# ---------------------------------------------------------------------------
# Daemon
# ---------------------------------------------------------------------------

@pytest.fixture
def service_parts(tmp_path):
    """Store + queue + daemon, started and reliably stopped."""
    store = ResultStore(tmp_path / "s.sqlite3")
    queue = JobQueue(maxsize=16)
    daemon = Daemon(store, queue, poll_s=0.02)
    daemon.start()
    try:
        yield store, queue, daemon
    finally:
        daemon.stop()
        store.close()


class TestDaemon:
    def test_executes_and_publishes(self, service_parts, stub):
        store, queue, daemon = service_parts
        key = stub_key(seed=5)
        job, _ = queue.submit("zz_stub", {"seed": 5}, key)
        assert job.wait(10.0)
        assert job.state == "done" and not job.cached
        assert stub.runs == 1
        assert key in store
        stats = daemon.stats()
        assert stats["executed"] == 1 and stats["cache_hits"] == 0
        assert stats["cache_hit_rate"] == 0.0

    def test_store_hit_skips_execution(self, service_parts, stub):
        store, queue, daemon = service_parts
        result = run_experiment("zz_stub", seed=7)
        assert stub.runs == 1
        store.put(result)
        job, _ = queue.submit("zz_stub", {"seed": 7}, result.key)
        assert job.wait(10.0)
        assert job.state == "done" and job.cached
        assert stub.runs == 1  # zero additional executions
        assert daemon.stats()["cache_hits"] == 1
        assert daemon.stats()["cache_hit_rate"] == 1.0

    def test_failure_is_isolated(self, service_parts, stub):
        store, queue, daemon = service_parts
        bad, _ = queue.submit("zz_stub", {"fail": True}, stub_key(fail=True))
        assert bad.wait(10.0)
        assert bad.state == "failed"
        assert "stub asked to fail" in bad.error
        assert stub_key(fail=True) not in store  # nothing published
        # The loop survived: the next job still runs.
        good, _ = queue.submit("zz_stub", {"seed": 9}, stub_key(seed=9))
        assert good.wait(10.0)
        assert good.state == "done"
        assert daemon.stats()["failed"] == 1


# ---------------------------------------------------------------------------
# HTTP end to end
# ---------------------------------------------------------------------------

@pytest.fixture
def service(tmp_path):
    with ExperimentService(tmp_path / "svc.sqlite3", port=0) as svc:
        svc.daemon.poll_s = 0.02
        yield svc


def _stripped(doc: dict) -> dict:
    out = dict(doc)
    out.pop("meta", None)
    return out


class TestServiceHTTP:
    def test_health_and_stats(self, service):
        client = ServiceClient(service.url)
        assert client.health()["ok"] is True
        stats = client.stats()
        assert stats["store"]["results"] == 0
        assert stats["queue"]["maxsize"] == 256
        assert stats["daemon"]["running"] is True
        assert "warm_pool" in stats["daemon"]

    @pytest.mark.parametrize("name", ["e1", "e10"])
    def test_byte_fidelity_vs_direct_run(self, service, name):
        """The determinism contract over HTTP (ISSUE acceptance).

        The service-computed document, meta stripped, equals the
        payload of the same options run directly in this process —
        e1 (sync sweep) and e10 (graph/async tier) both.
        """
        opts = GOLDEN_OPTS[name]
        client = ServiceClient(service.url)
        terminal, doc = client.submit_and_fetch(name, opts, timeout_s=300)
        assert terminal["state" if "state" in terminal else "status"] \
            == "done"
        direct = run_experiment(name, **opts)
        assert json.dumps(_stripped(doc), sort_keys=True) \
            == json.dumps(_stripped(direct.to_json_dict()), sort_keys=True)
        assert doc["meta"]["version"] == direct.meta.version
        # Resubmission: answered from the store, no job, no execution.
        executed_before = service.daemon.stats()["executed"]
        again = client.submit(name, opts)
        assert again["status"] == "done" and again["cached"] is True
        assert again["id"] is None
        assert client.result(again["key"]) == doc
        assert service.daemon.stats()["executed"] == executed_before

    def test_concurrent_identical_submissions_execute_once(
        self, service, stub
    ):
        """N racing submissions of one cell -> exactly one execution."""
        stub.release.clear()  # hold the execution open mid-race
        client = ServiceClient(service.url)
        n = 8
        replies, errors = [], []
        barrier = threading.Barrier(n)

        def fire():
            barrier.wait()
            try:
                replies.append(client.submit("zz_stub",
                                             {"seed": 42, "sleep_s": 0.05}))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=fire) for _ in range(n)]
        for t in threads:
            t.start()
        # Let the submissions land (and the first start running), then
        # release the stub and collect.
        for t in threads:
            t.join(10.0)
        stub.release.set()
        assert not errors
        assert len(replies) == n
        ids = {r["id"] for r in replies if r["id"] is not None}
        assert len(ids) == 1, f"race created {len(ids)} distinct jobs"
        job_id = ids.pop()
        done = client.wait({"id": job_id, "key": stub_key(seed=42,
                                                          sleep_s=0.05)})
        assert done["state"] == "done"
        assert done["subscribers"] >= n - len(
            [r for r in replies if r["id"] is None]
        )
        assert stub.runs == 1, f"executed {stub.runs} times, wanted 1"
        assert service.daemon.stats()["executed"] == 1

    def test_backpressure_replies_429(self, tmp_path, stub):
        stub.release.clear()  # first job blocks the daemon
        with ExperimentService(tmp_path / "bp.sqlite3", port=0,
                               queue_size=1) as svc:
            svc.daemon.poll_s = 0.02
            client = ServiceClient(svc.url)
            running = client.submit("zz_stub", {"seed": 1})
            # Wait for the daemon to lease it so the pending slot frees.
            deadline = time.monotonic() + 5
            while client.job(running["id"])["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            pending = client.submit("zz_stub", {"seed": 2})  # fills 1/1
            assert pending["status"] == "queued"
            with pytest.raises(ServiceError) as err:
                client.submit("zz_stub", {"seed": 3})
            assert err.value.status == 429
            assert "retry later" in str(err.value)
            stub.release.set()
            assert client.wait(pending)["state"] == "done"
            # The freed slot accepts the retried submission.
            retry = client.submit("zz_stub", {"seed": 3})
            assert retry["status"] in ("queued", "running")
            client.wait(retry)

    def test_bad_submissions_reply_400(self, service):
        client = ServiceClient(service.url)
        cases = [
            {},                                        # no experiment
            {"experiment": "nope"},                    # unknown name
            {"experiment": "e1", "options": {"bogus": 1}},  # bad field
            {"experiment": "e1", "options": [1, 2]},   # wrong shape
        ]
        for body in cases:
            with pytest.raises(ServiceError) as err:
                client._request("POST", "/jobs", body)
            assert err.value.status == 400, body
        # Unknown option fields name the valid ones.
        with pytest.raises(ServiceError, match="valid fields"):
            client.submit("e1", {"bogus": 1})
        # Malformed JSON body.
        req = urllib.request.Request(
            f"{service.url}/jobs", data=b"{oops",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as raw:
            urllib.request.urlopen(req, timeout=10)
        assert raw.value.code == 400
        # Structurally valid but mis-typed values pass the front door
        # (dataclasses don't type-check) and surface as a failed job.
        sub = client.submit("e1", {"trials": "many"})
        with pytest.raises(ServiceError, match="failed"):
            client.wait(sub)

    def test_unknown_routes_reply_404(self, service):
        client = ServiceClient(service.url)
        for path in ["/jobs/j999999", "/results/deadbeef", "/nope"]:
            with pytest.raises(ServiceError) as err:
                client._request("GET", path)
            assert err.value.status == 404, path
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/results/x", {})
        assert err.value.status == 404

    def test_jobs_listing(self, service, stub):
        client = ServiceClient(service.url)
        sub = client.submit("zz_stub", {"seed": 3})
        client.wait(sub)
        jobs = client.jobs()
        assert [j["id"] for j in jobs] == [sub["id"]]
        assert jobs[0]["state"] == "done"
        assert jobs[0]["key"] == stub_key(seed=3)
        assert client.job(sub["id"])["experiment"] == "zz_stub"

    def test_failed_job_raises_on_wait(self, service, stub):
        client = ServiceClient(service.url)
        sub = client.submit("zz_stub", {"fail": True})
        with pytest.raises(ServiceError, match="stub asked to fail"):
            client.wait(sub)
        assert service.daemon.stats()["failed"] == 1
