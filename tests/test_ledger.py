"""Tests for the Commitment-phase ledger."""

from __future__ import annotations

from repro.core.ledger import Ledger
from repro.core.votes import PlannedVote, VoteIntention


def intent(*pairs: tuple[int, int]) -> VoteIntention:
    return VoteIntention(tuple(PlannedVote(v, t) for v, t in pairs))


class TestRecording:
    def test_unknown_voter(self):
        ledger = Ledger()
        assert not ledger.knows(3)
        assert ledger.record_for(3) is None

    def test_single_version(self):
        ledger = Ledger()
        h = intent((1, 2))
        ledger.record_intention(5, h, rnd=0)
        rec = ledger.record_for(5)
        assert rec is not None
        assert rec.versions == [h]
        assert not rec.marked_faulty

    def test_duplicate_declaration_not_duplicated(self):
        ledger = Ledger()
        h = intent((1, 2))
        ledger.record_intention(5, h, rnd=0)
        ledger.record_intention(5, h, rnd=3)
        assert len(ledger.record_for(5).versions) == 1

    def test_equivocation_keeps_both_versions(self):
        ledger = Ledger()
        ledger.record_intention(5, intent((1, 2)), rnd=0)
        ledger.record_intention(5, intent((9, 2)), rnd=1)
        assert ledger.is_equivocator(5)
        assert len(ledger.record_for(5).versions) == 2

    def test_first_round_tracked_per_version(self):
        ledger = Ledger()
        ledger.record_intention(5, intent((1, 2)), rnd=4)
        ledger.record_intention(5, intent((9, 2)), rnd=7)
        rec = ledger.record_for(5)
        assert rec.first_round == {0: 4, 1: 7}

    def test_faulty_marking(self):
        ledger = Ledger()
        ledger.record_faulty(8)
        assert ledger.knows(8)
        assert ledger.record_for(8).marked_faulty
        assert ledger.num_faulty_marked() == 1

    def test_faulty_and_declared_can_coexist(self):
        # A deviant might reply once then stay silent: both facts recorded.
        ledger = Ledger()
        ledger.record_intention(5, intent((1, 2)), rnd=0)
        ledger.record_faulty(5)
        rec = ledger.record_for(5)
        assert rec.marked_faulty and len(rec.versions) == 1


class TestQueries:
    def test_voters_sorted(self):
        ledger = Ledger()
        ledger.record_faulty(9)
        ledger.record_intention(2, intent((1, 3)), rnd=0)
        ledger.record_intention(7, intent((1, 3)), rnd=0)
        assert ledger.voters() == [2, 7, 9]

    def test_num_declared_excludes_faulty_only_records(self):
        ledger = Ledger()
        ledger.record_faulty(9)
        ledger.record_intention(2, intent((1, 3)), rnd=0)
        assert ledger.num_declared() == 1

    def test_is_equivocator_false_for_single_or_unknown(self):
        ledger = Ledger()
        assert not ledger.is_equivocator(1)
        ledger.record_intention(1, intent((1, 3)), rnd=0)
        assert not ledger.is_equivocator(1)
