"""Tests for vote intentions and their payloads."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import ProtocolParams
from repro.core.votes import (
    IntentionPayload,
    PlannedVote,
    VoteIntention,
    generate_intention,
)
from repro.util.rng import SeedTree


class TestGeneration:
    def test_length_is_q(self):
        p = ProtocolParams(n=32, gamma=2.0)
        rng = SeedTree(1).generator()
        h = generate_intention(p, rng, self_id=0)
        assert len(h) == p.q

    def test_values_in_domain(self):
        p = ProtocolParams(n=16, gamma=3.0)
        rng = SeedTree(2).generator()
        h = generate_intention(p, rng, self_id=3)
        assert all(0 <= pv.value < p.m for pv in h)

    def test_targets_never_self(self):
        p = ProtocolParams(n=8, gamma=4.0)
        for self_id in range(8):
            rng = SeedTree(3).child(self_id).generator()
            h = generate_intention(p, rng, self_id=self_id)
            assert all(pv.target != self_id for pv in h)
            assert all(0 <= pv.target < p.n for pv in h)

    def test_deterministic_given_stream(self):
        p = ProtocolParams(n=32, gamma=2.0)
        h1 = generate_intention(p, SeedTree(5).generator(), 0)
        h2 = generate_intention(p, SeedTree(5).generator(), 0)
        assert h1 == h2

    @given(st.integers(min_value=2, max_value=128),
           st.integers(min_value=0, max_value=127),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50)
    def test_property_valid_for_any_agent(self, n, self_id, seed):
        self_id %= n
        p = ProtocolParams(n=n, gamma=1.0)
        h = generate_intention(p, SeedTree(seed).generator(), self_id)
        assert len(h) == p.q
        for pv in h:
            assert 0 <= pv.value < p.m
            assert 0 <= pv.target < n and pv.target != self_id

    def test_target_distribution_covers_network(self):
        # With q*many draws every label should get some votes.
        p = ProtocolParams(n=8, gamma=8.0)
        hits = set()
        for i in range(p.n):
            h = generate_intention(p, SeedTree(7).child(i).generator(), i)
            hits.update(pv.target for pv in h)
        assert hits == set(range(p.n))


class TestVotesFor:
    def test_votes_for_returns_round_value_pairs(self):
        h = VoteIntention((
            PlannedVote(10, 2),
            PlannedVote(20, 1),
            PlannedVote(30, 2),
        ))
        assert h.votes_for(2) == [(0, 10), (2, 30)]
        assert h.votes_for(1) == [(1, 20)]
        assert h.votes_for(9) == []

    def test_indexing_and_iteration(self):
        h = VoteIntention((PlannedVote(1, 2), PlannedVote(3, 4)))
        assert h[1] == PlannedVote(3, 4)
        assert [pv.value for pv in h] == [1, 3]


class TestPayloads:
    def test_intention_payload_size(self):
        p = ProtocolParams(n=16, gamma=2.0)
        h = generate_intention(p, SeedTree(1).generator(), 0)
        payload = IntentionPayload(h, p.intention_bits())
        assert payload.size_bits() == p.q * (p.vote_bits + p.label_bits)
