"""The fault-tolerance recovery matrix (DESIGN.md §10).

Every recovery path of the execution layer is exercised here with
deterministic fault injection (:mod:`repro.exec.chaos`): worker crash
mid-shard, shard timeout with pool respawn, serial degradation after
the retry budget, torn archive writes quarantined on resume, a
SIGKILLed study resuming from its checkpoint journal, and
KeyboardInterrupt cancelling in-flight shards cleanly.  The invariant
checked throughout: **faults cost wall time, never bytes** — every
recovered run is byte-identical to an unfaulted ``jobs=1`` run.

The heavier end-to-end chaos runs are gated on ``REPRO_CHAOS=1``
(CI's chaos job sets it); the core matrix always runs.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.exec import (
    FaultPolicy,
    chaos_enabled,
    collect_execution,
    fault_policy,
    merge_shards,
    resolve_backend,
    run_plan,
    run_trials,
    set_fault_policy,
)
from repro.exec import chaos
from repro.exec.plan import compile_honest_plan
from repro.exec.pool import available_cpus, default_workers
from repro.experiments.dispatch import run_async_trials_fast, run_trials_fast
from repro.experiments.registry import run_experiment
from repro.experiments.workloads import balanced
from repro.results import (
    ResultMeta,
    atomic_write_text,
    build_meta,
    load_result,
    save_result,
)
from repro.study import Study, StudyJournal

needs_chaos_env = pytest.mark.skipif(
    not chaos_enabled(),
    reason="heavy chaos suite; set REPRO_CHAOS=1 (the CI chaos job does)",
)


@pytest.fixture(autouse=True)
def _reset_fault_policy():
    """Tests that set the process-wide policy must not leak it."""
    yield
    set_fault_policy(None)


def _fields_equal(a, b) -> bool:
    for f in dataclasses.fields(a):
        x, y = getattr(a, f.name), getattr(b, f.name)
        if isinstance(x, np.ndarray):
            if not np.array_equal(x, y):
                return False
        elif dataclasses.is_dataclass(x) and not isinstance(x, type):
            if not _fields_equal(x, y):
                return False
        elif x != y:
            return False
    return True


# ---------------------------------------------------------------------------
# Guard rails: worker-count handling, policy validation
# ---------------------------------------------------------------------------

class TestPoolGuards:
    def test_default_workers_survives_unknown_cpu_count(self, monkeypatch):
        # No affinity call, no cpu_count answer: one worker, no crash.
        monkeypatch.setattr("repro.exec.pool.os.sched_getaffinity", None,
                            raising=False)
        monkeypatch.setattr("repro.exec.pool.os.cpu_count", lambda: None)
        assert available_cpus() == 1
        assert default_workers() == 1

    def test_default_workers_floor_and_cap(self, monkeypatch):
        monkeypatch.setattr("repro.exec.pool.os.sched_getaffinity",
                            lambda pid: {0}, raising=False)
        assert default_workers() == 1
        monkeypatch.setattr("repro.exec.pool.os.sched_getaffinity",
                            lambda pid: set(range(64)), raising=False)
        assert default_workers() == 16

    def test_workers_sized_from_affinity_not_machine(self, monkeypatch):
        # The cgroup/taskset case: the machine has 64 cores, the
        # process is granted 2.  Sizing from cpu_count() would
        # oversubscribe 30x; the affinity mask is the truth.
        monkeypatch.setattr("repro.exec.pool.os.cpu_count", lambda: 64)
        monkeypatch.setattr("repro.exec.pool.os.sched_getaffinity",
                            lambda pid: {0, 1}, raising=False)
        assert available_cpus() == 2
        assert default_workers() == 1

    def test_affinity_failure_falls_back_to_cpu_count(self, monkeypatch):
        def boom(pid):
            raise OSError("no affinity on this platform")

        monkeypatch.setattr("repro.exec.pool.os.sched_getaffinity", boom,
                            raising=False)
        monkeypatch.setattr("repro.exec.pool.os.cpu_count", lambda: 8)
        assert available_cpus() == 8
        assert default_workers() == 6

    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_run_trials_rejects_nonpositive_workers(self, bad):
        with pytest.raises(ValueError, match="max_workers"):
            run_trials(abs, [1, 2], max_workers=bad)

    @pytest.mark.parametrize("bad", [0, -2])
    def test_resolve_backend_rejects_nonpositive_jobs(self, bad):
        with pytest.raises(ValueError, match="jobs"):
            resolve_backend("auto", bad)

    def test_fault_policy_validation(self):
        with pytest.raises(ValueError, match="shard_timeout_s"):
            FaultPolicy(shard_timeout_s=0)
        with pytest.raises(ValueError, match="shard_timeout_s"):
            FaultPolicy(shard_timeout_s=-1.0)
        with pytest.raises(ValueError, match="max_retries"):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_base_s"):
            FaultPolicy(backoff_base_s=-0.1)

    def test_fault_policy_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        from repro.exec.backends import get_fault_policy

        policy = get_fault_policy()
        assert policy.shard_timeout_s == 12.5
        assert policy.max_retries == 5

    @pytest.mark.parametrize("bad", ["5s", "nan", "-3", "0", "1,5"])
    def test_malformed_timeout_env_rejected(self, monkeypatch, bad):
        from repro.exec.backends import get_fault_policy

        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", bad)
        with pytest.raises(ValueError) as err:
            get_fault_policy()
        # The error names the variable and the accepted form — never a
        # bare float() traceback, never a silently accepted NaN.
        assert "REPRO_SHARD_TIMEOUT" in str(err.value)
        assert "seconds" in str(err.value)

    @pytest.mark.parametrize("bad", ["two", "-1", "1.5", "0x2"])
    def test_malformed_retries_env_rejected(self, monkeypatch, bad):
        from repro.exec.backends import get_fault_policy

        monkeypatch.setenv("REPRO_MAX_RETRIES", bad)
        with pytest.raises(ValueError) as err:
            get_fault_policy()
        assert "REPRO_MAX_RETRIES" in str(err.value)
        assert "integer" in str(err.value)

    def test_empty_env_knobs_mean_unset(self, monkeypatch):
        from repro.exec.backends import get_fault_policy

        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "")
        policy = get_fault_policy()
        assert policy.shard_timeout_s is None
        assert policy.max_retries == FaultPolicy().max_retries

    def test_fault_policy_rejects_nan_timeout(self):
        with pytest.raises(ValueError, match="shard_timeout_s"):
            FaultPolicy(shard_timeout_s=float("nan"))

    def test_fault_policy_context_restores(self):
        from repro.exec.backends import get_fault_policy

        before = get_fault_policy()
        with fault_policy(FaultPolicy(max_retries=9)):
            assert get_fault_policy().max_retries == 9
        assert get_fault_policy() == before


# ---------------------------------------------------------------------------
# Chaos schedules are deterministic and recoverable by construction
# ---------------------------------------------------------------------------

class TestChaosSchedule:
    def test_schedule_deterministic(self):
        a = chaos.ChaosConfig(seed=42, kill_rate=0.5, delay_rate=0.5)
        b = chaos.ChaosConfig(seed=42, kill_rate=0.5, delay_rate=0.5)
        for shard in range(20):
            for attempt in range(3):
                assert a.shard_chaos(shard, attempt) == \
                    b.shard_chaos(shard, attempt)
        assert a.truncates("x.json") == b.truncates("x.json")

    def test_seed_changes_schedule(self):
        a = chaos.ChaosConfig(seed=1, kill_rate=0.5)
        b = chaos.ChaosConfig(seed=2, kill_rate=0.5)
        plans_a = [a.shard_chaos(s, 0).kill for s in range(64)]
        plans_b = [b.shard_chaos(s, 0).kill for s in range(64)]
        assert plans_a != plans_b

    def test_attempts_past_budget_run_clean(self):
        cfg = chaos.ChaosConfig(seed=0, kill_rate=1.0, delay_rate=1.0,
                                max_faulty_attempts=2)
        for shard in range(8):
            assert cfg.shard_chaos(shard, 2) == chaos.ShardChaos()
            assert cfg.shard_chaos(shard, 5) == chaos.ShardChaos()

    def test_from_env_gated(self):
        assert chaos.ChaosConfig.from_env({}) is None
        assert chaos.ChaosConfig.from_env({"REPRO_CHAOS": "0"}) is None
        cfg = chaos.ChaosConfig.from_env(
            {"REPRO_CHAOS": "1", "REPRO_CHAOS_SEED": "7",
             "REPRO_CHAOS_KILL_RATE": "0.25"}
        )
        assert cfg is not None
        assert cfg.seed == 7
        assert cfg.kill_rate == 0.25

    def test_install_scopes_and_restores(self):
        assert chaos.active_config() is None
        with chaos.install(chaos.ChaosConfig(seed=3)) as cfg:
            assert chaos.active_config() is cfg
        assert chaos.active_config() is None


# ---------------------------------------------------------------------------
# Reducer diagnostics
# ---------------------------------------------------------------------------

class TestReducerDiagnostics:
    def test_mismatch_names_field_shard_and_values(self):
        a = run_trials_fast(balanced(16), range(4))
        b = run_trials_fast(balanced(16), range(4))
        c = run_trials_fast(balanced(18), range(4))
        with pytest.raises(ValueError) as exc:
            merge_shards([a, b, c])
        message = str(exc.value)
        assert "'n'" in message
        assert "shard 0" in message and "shard 2" in message
        assert "16" in message and "18" in message


# ---------------------------------------------------------------------------
# Crash-safe archive writes
# ---------------------------------------------------------------------------

class TestAtomicWrites:
    def test_no_temp_files_left_behind(self, tmp_path):
        result = run_experiment("e1", sizes=(16,), workloads=("balanced",),
                                trials=4, parallel=False)
        save_result(result, tmp_path, formats=("json", "jsonl", "csv", "txt"))
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []
        loaded = load_result(tmp_path / f"e1-{result.key}.json")
        assert loaded.payload_json() == result.payload_json()

    def test_failed_publish_preserves_previous_version(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "doc.json"
        atomic_write_text(target, '{"v": 1}')

        def boom(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr("repro.results.os.replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(target, '{"v": 2}')
        monkeypatch.undo()
        # The previous version is intact and no temp file survives.
        assert json.loads(target.read_text()) == {"v": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]


# ---------------------------------------------------------------------------
# The recovery matrix: crash, timeout, degradation, poisoned shards
# ---------------------------------------------------------------------------

class TestShardRecovery:
    """Chaos-driven faults on a genuinely sharded workload.

    ``batch-parity`` has shard quantum 1, so a 10-trial run at
    ``jobs=2`` cuts into real shards even at n=24.
    """

    COLORS = balanced(24)
    SEEDS = range(10)

    def _serial(self):
        return run_trials_fast(self.COLORS, self.SEEDS,
                               engine="batch-parity")

    def test_worker_crash_mid_shard_recovers(self):
        serial = self._serial()
        cfg = chaos.ChaosConfig(seed=11, kill_rate=1.0,
                                max_faulty_attempts=1)
        with chaos.install(cfg), fault_policy(
            FaultPolicy(backoff_base_s=0.01)
        ), collect_execution() as records:
            recovered = run_trials_fast(self.COLORS, self.SEEDS,
                                        engine="batch-parity", jobs=2)
        (rec,) = records
        assert rec.backend == "parallel"
        assert rec.shard_failures > 0
        assert rec.retries > 0
        assert rec.degraded_shards == 0
        assert _fields_equal(serial, recovered)

    def test_shard_timeout_respawns_and_recovers(self):
        serial = self._serial()
        cfg = chaos.ChaosConfig(seed=12, delay_rate=1.0, delay_s=1.5,
                                max_faulty_attempts=1)
        start = time.monotonic()
        with chaos.install(cfg), fault_policy(
            FaultPolicy(shard_timeout_s=0.3, backoff_base_s=0.01)
        ), collect_execution() as records:
            recovered = run_trials_fast(self.COLORS, self.SEEDS,
                                        engine="batch-parity", jobs=2)
        (rec,) = records
        assert rec.shard_failures > 0
        assert rec.retries > 0
        # The hung first attempts were abandoned, not waited out.
        assert time.monotonic() - start < 10.0
        assert _fields_equal(serial, recovered)

    def test_persistent_failure_degrades_serially(self):
        serial = self._serial()
        cfg = chaos.ChaosConfig(seed=13, kill_rate=1.0,
                                max_faulty_attempts=99)
        with chaos.install(cfg), fault_policy(
            FaultPolicy(max_retries=1, backoff_base_s=0.01)
        ), collect_execution() as records:
            recovered = run_trials_fast(self.COLORS, self.SEEDS,
                                        engine="batch-parity", jobs=2)
        (rec,) = records
        assert rec.degraded_shards >= 1
        assert rec.recovery_wall_s > 0
        assert _fields_equal(serial, recovered)

    def test_poisoned_plan_raises_instead_of_hanging(self):
        """A shard that fails deterministically (a real bug, not a
        fault) must surface its error from the serial degradation
        re-run — never retry forever."""
        plan = compile_honest_plan(self.COLORS, self.SEEDS,
                                   engine="batch-parity")
        poisoned = dataclasses.replace(
            plan, options={**plan.options, "gamma": "not-a-float"}
        )
        with fault_policy(FaultPolicy(max_retries=0, backoff_base_s=0.0)):
            with pytest.raises(TypeError):
                run_plan(poisoned, jobs=2)

    def test_async_front_door_recovers(self):
        serial = run_async_trials_fast(16, range(8), colors=balanced(16))
        cfg = chaos.ChaosConfig(seed=14, kill_rate=0.7,
                                max_faulty_attempts=1)
        with chaos.install(cfg), fault_policy(
            FaultPolicy(backoff_base_s=0.01)
        ):
            recovered = run_async_trials_fast(16, range(8),
                                              colors=balanced(16), jobs=2)
        assert _fields_equal(serial, recovered)


# ---------------------------------------------------------------------------
# Shared-memory lifecycle: every recovery path unlinks its segments
# ---------------------------------------------------------------------------

class TestShmLifecycle:
    """The shm ownership contract (DESIGN.md §9): the parent owns both
    segments and unlinks them on *every* path — normal completion,
    worker SIGKILL (pre-compute and mid-write), shard timeout with pool
    respawn, serial degradation.  ``/dev/shm`` must end every run
    exactly as it started."""

    COLORS = balanced(24)
    SEEDS = range(10)

    @staticmethod
    def _segments():
        from repro.exec.shm import repo_segments

        return repo_segments()

    def test_normal_run_uses_shm_and_leaks_nothing(self):
        before = self._segments()
        with collect_execution() as records:
            result = run_trials_fast(self.COLORS, self.SEEDS,
                                     engine="batch-parity", jobs=2)
        (rec,) = records
        assert rec.transport == "shm"
        assert rec.workers == 2
        assert self._segments() == before
        assert _fields_equal(result, run_trials_fast(
            self.COLORS, self.SEEDS, engine="batch-parity"))

    def test_worker_sigkill_mid_write_leaks_nothing(self):
        before = self._segments()
        serial = run_trials_fast(self.COLORS, self.SEEDS,
                                 engine="batch-parity")
        cfg = chaos.ChaosConfig(seed=31, kill_rate=1.0,
                                max_faulty_attempts=1)
        # The schedule must actually contain mid-write kills (chaos
        # splits kills 50/50 between pre-compute and mid-write).
        specs = [cfg.shard_chaos(s, 0) for s in range(8)]
        assert any(s.kill_mid_write for s in specs)
        assert any(s.kill for s in specs)
        with chaos.install(cfg), fault_policy(
            FaultPolicy(backoff_base_s=0.01)
        ), collect_execution() as records:
            recovered = run_trials_fast(self.COLORS, self.SEEDS,
                                        engine="batch-parity", jobs=2)
        (rec,) = records
        assert rec.shard_failures > 0
        assert rec.transport == "shm"
        assert self._segments() == before
        # A torn slice never reaches the merged result: the retry
        # rewrote the whole slice.
        assert _fields_equal(serial, recovered)

    def test_timeout_respawn_leaks_nothing(self):
        before = self._segments()
        serial = run_trials_fast(self.COLORS, self.SEEDS,
                                 engine="batch-parity")
        cfg = chaos.ChaosConfig(seed=32, delay_rate=1.0, delay_s=1.5,
                                max_faulty_attempts=1)
        with chaos.install(cfg), fault_policy(
            FaultPolicy(shard_timeout_s=0.3, backoff_base_s=0.01)
        ):
            recovered = run_trials_fast(self.COLORS, self.SEEDS,
                                        engine="batch-parity", jobs=2)
        assert self._segments() == before
        assert _fields_equal(serial, recovered)

    def test_serial_degradation_leaks_nothing(self):
        before = self._segments()
        serial = run_trials_fast(self.COLORS, self.SEEDS,
                                 engine="batch-parity")
        cfg = chaos.ChaosConfig(seed=33, kill_rate=1.0,
                                max_faulty_attempts=99)
        with chaos.install(cfg), fault_policy(
            FaultPolicy(max_retries=1, backoff_base_s=0.01)
        ), collect_execution() as records:
            recovered = run_trials_fast(self.COLORS, self.SEEDS,
                                        engine="batch-parity", jobs=2)
        (rec,) = records
        assert rec.degraded_shards >= 1
        assert self._segments() == before
        # Degraded shards were written into the segment by the parent
        # itself — same bytes as the pool path.
        assert _fields_equal(serial, recovered)

    def test_shm_disabled_falls_back_to_pickle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        serial = run_trials_fast(self.COLORS, self.SEEDS,
                                 engine="batch-parity")
        with collect_execution() as records:
            result = run_trials_fast(self.COLORS, self.SEEDS,
                                     engine="batch-parity", jobs=2)
        (rec,) = records
        assert rec.transport == "pickle"
        assert _fields_equal(serial, result)


# ---------------------------------------------------------------------------
# Telemetry: recovery is observable in ResultMeta
# ---------------------------------------------------------------------------

class TestRecoveryTelemetry:
    def test_result_meta_roundtrips_recovery_fields(self):
        meta = build_meta(retries=3, shard_failures=4, degraded_shards=1,
                          recovery_wall_s=0.5)
        doc = meta.to_json_dict()
        assert doc["retries"] == 3
        assert doc["shard_failures"] == 4
        assert doc["degraded_shards"] == 1
        assert doc["recovery_wall_s"] == 0.5
        assert ResultMeta.from_json_dict(doc) == meta

    def test_legacy_meta_defaults_to_zero(self):
        meta = ResultMeta.from_json_dict({"version": "1.3.0"})
        assert meta.retries == 0
        assert meta.shard_failures == 0
        assert meta.degraded_shards == 0
        assert meta.recovery_wall_s == 0.0

    def test_experiment_meta_records_recovery(self):
        cfg = chaos.ChaosConfig(seed=15, kill_rate=1.0,
                                max_faulty_attempts=1)
        with chaos.install(cfg), fault_policy(
            FaultPolicy(backoff_base_s=0.01)
        ):
            result = run_experiment(
                "e1", sizes=(16,), workloads=("balanced",), trials=8,
                engine="batch-parity", parallel=False, jobs=2,
            )
        assert result.meta.backend == "parallel"
        assert result.meta.retries > 0
        assert result.meta.shard_failures > 0
        clean = run_experiment(
            "e1", sizes=(16,), workloads=("balanced",), trials=8,
            engine="batch-parity", parallel=False, jobs=1,
        )
        assert clean.meta.retries == 0
        assert result.payload_json() == clean.payload_json()


# ---------------------------------------------------------------------------
# Study resilience: quarantine, journal, SIGKILL resume
# ---------------------------------------------------------------------------

def _tiny_study() -> Study:
    return Study("e1", {"gamma": [2.0, 3.0]}, trials=6, sizes=(16,),
                 workloads=("balanced",), parallel=False)


class TestStudyRecovery:
    def test_corrupt_cached_cell_quarantined_and_rerun(self, tmp_path,
                                                       capsys):
        first = _tiny_study().run(out_dir=tmp_path)
        victim = sorted(tmp_path.glob("e1-*.json"))[0]
        if "manifest" in victim.name:
            victim = sorted(tmp_path.glob("e1-*.json"))[1]
        victim.write_text(victim.read_text()[:40])  # torn write
        second = _tiny_study().run(out_dir=tmp_path)
        assert len(second.quarantined) == 1
        assert (tmp_path / f"{victim.name}.corrupt").is_file()
        assert sum(c.recovered for c in second.cells) == 1
        assert sum(c.cached for c in second.cells) == 1
        payloads = lambda sr: [c.result.payload_json() for c in sr.cells]
        assert payloads(first) == payloads(second)
        assert "quarantined corrupt cached result" in \
            capsys.readouterr().err
        # Third run: everything is healthy again.
        third = _tiny_study().run(out_dir=tmp_path)
        assert all(c.cached for c in third.cells)
        assert third.quarantined == ()

    def test_journal_records_progress_then_compacts(self, tmp_path):
        journal = StudyJournal.for_study(tmp_path, "e1")
        seen: list[list[str]] = []
        _tiny_study().run(
            out_dir=tmp_path,
            progress=lambda cell: seen.append(
                [e["event"] for e in journal.events()]
            ),
        )
        # Mid-run the journal checkpoints each completed cell...
        assert seen[0] == ["study", "cell"]
        assert seen[1] == ["study", "cell", "cell"]
        # ...and on successful completion it folds into the manifest
        # and truncates, so resumed studies never replay an unbounded
        # event log.
        events = journal.events()
        assert [e["event"] for e in events] == ["compacted"]
        assert events[0]["cells_done"] == 2
        manifest = json.loads(
            (tmp_path / "e1-study.manifest.json").read_text()
        )
        assert manifest["journal"]["compacted"] is True
        assert manifest["journal"]["cells_done"] == 2
        assert manifest["journal"]["quarantined"] == 0

    def test_journal_stays_bounded_across_resumes(self, tmp_path):
        study = _tiny_study()
        journal = StudyJournal.for_study(tmp_path, "e1")
        study.run(out_dir=tmp_path)
        size = journal.path.stat().st_size
        for _ in range(3):
            study.run(out_dir=tmp_path)  # all cells cached
            assert journal.path.stat().st_size == size

    def test_journal_tolerates_torn_last_line(self, tmp_path):
        journal = StudyJournal.for_study(tmp_path, "e1")
        journal.append({"event": "study"})
        journal.append({"event": "cell", "key": "k1", "status": "done"})
        journal.append({"event": "cell", "key": "k2", "status": "done"})
        text = journal.path.read_text()
        journal.path.write_text(text[:-9])  # SIGKILL mid-append
        events = journal.events()
        assert events[0]["event"] == "study"
        assert len(journal.done_keys()) >= 1

    def test_manifest_written_atomically(self, tmp_path):
        result = _tiny_study().run(out_dir=tmp_path)
        manifest = json.loads(
            (tmp_path / "e1-study.manifest.json").read_text()
        )
        assert manifest["experiment"] == "e1"
        assert manifest["quarantined"] == []
        assert len(manifest["cells"]) == len(result.cells)
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_half_written_study_dir_resumes(self, tmp_path):
        """The SIGKILL aftermath, reconstructed file-by-file: one cell
        archive missing, one torn, the journal torn mid-append — resume
        re-runs exactly the incomplete cells and reproduces the
        uninterrupted payloads."""
        study = Study("e1", {"gamma": [1.5, 2.0, 3.0]}, trials=6,
                      sizes=(16,), workloads=("balanced",), parallel=False)
        pristine = study.run(out_dir=tmp_path / "pristine")
        crash_dir = tmp_path / "crashed"
        study.run(out_dir=crash_dir)
        cells = sorted(
            p for p in crash_dir.glob("e1-*.json")
            if "manifest" not in p.name
        )
        assert len(cells) == 3
        cells[0].unlink()                                  # never written
        cells[1].write_text(cells[1].read_text()[:30])     # torn
        journal = StudyJournal.for_study(crash_dir, "e1")
        journal.path.write_text(journal.path.read_text()[:-5])
        resumed = study.run(out_dir=crash_dir)
        assert sum(c.cached for c in resumed.cells) == 1
        assert len(resumed.quarantined) == 1
        payloads = lambda sr: [c.result.payload_json() for c in sr.cells]
        assert payloads(pristine) == payloads(resumed)

    def test_study_jobs2_under_chaos_matches_clean_jobs1(self, tmp_path):
        study = Study("e10", {"trials": [4, 6]}, n=24,
                      scenarios=("complete",), async_sizes=(16,),
                      parallel=False)
        clean = study.run(out_dir=tmp_path / "clean", jobs=1)
        cfg = chaos.ChaosConfig(seed=16, kill_rate=0.6, delay_rate=0.3,
                                delay_s=0.1, max_faulty_attempts=1)
        with chaos.install(cfg), fault_policy(
            FaultPolicy(backoff_base_s=0.01)
        ):
            faulted = study.run(out_dir=tmp_path / "chaos", jobs=2)
        payloads = lambda sr: [c.result.payload_json() for c in sr.cells]
        assert payloads(clean) == payloads(faulted)


# ---------------------------------------------------------------------------
# Process-level faults: real SIGKILL, real SIGINT
# ---------------------------------------------------------------------------

_SIGKILL_CHILD = textwrap.dedent("""
    import sys
    from repro.study import Study
    Study("e1", {"gamma": [1.5, 2.0, 3.0, 4.0]}, trials=6, sizes=(16,),
          workloads=("balanced",), parallel=False).run(out_dir=sys.argv[1])
    print("STUDY-COMPLETE", flush=True)
""")

_SIGINT_CHILD = textwrap.dedent("""
    from repro.exec import chaos, fault_policy, FaultPolicy
    from repro.experiments.dispatch import run_trials_fast
    from repro.experiments.workloads import balanced
    print("CHILD-READY", flush=True)
    cfg = chaos.ChaosConfig(seed=1, delay_rate=1.0, delay_s=30.0,
                            max_faulty_attempts=99)
    try:
        with chaos.install(cfg):
            run_trials_fast(balanced(24), range(10),
                            engine="batch-parity", jobs=2)
    except KeyboardInterrupt:
        print("INTERRUPTED-CLEANLY", flush=True)
        raise SystemExit(130)
""")


def _child_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CHAOS", None)
    return env


class TestProcessLevelFaults:
    def test_sigkilled_study_resumes_from_journal(self, tmp_path):
        """Kill -9 a running study, then resume: only incomplete cells
        re-run, and the archive matches an uninterrupted run."""
        out = tmp_path / "killed"
        proc = subprocess.Popen(
            [sys.executable, "-c", _SIGKILL_CHILD, str(out)],
            env=_child_env(), stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True,
        )
        journal_path = StudyJournal.for_study(out, "e1").path
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if journal_path.is_file() and \
                    len(StudyJournal(journal_path).done_keys()) >= 1:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        proc.kill()  # SIGKILL — no cleanup handlers run
        proc.wait(timeout=60)
        study = Study("e1", {"gamma": [1.5, 2.0, 3.0, 4.0]}, trials=6,
                      sizes=(16,), workloads=("balanced",), parallel=False)
        resumed = study.run(out_dir=out)
        pristine = study.run(out_dir=tmp_path / "pristine")
        payloads = lambda sr: [c.result.payload_json() for c in sr.cells]
        assert payloads(resumed) == payloads(pristine)
        # The journal survived the kill readable up to the crash point
        # and the completed resume compacted it into the manifest.
        assert StudyJournal.for_study(out, "e1").events()[-1]["event"] == \
            "compacted"

    @pytest.mark.slow
    def test_keyboard_interrupt_cancels_in_flight_shards(self):
        """SIGINT during a parallel run with hung (chaos-delayed)
        workers must terminate promptly — in-flight shards are killed,
        not waited out for 30s."""
        proc = subprocess.Popen(
            [sys.executable, "-c", _SIGINT_CHILD],
            env=_child_env(), stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True,
        )
        assert proc.stdout is not None
        assert proc.stdout.readline().strip() == "CHILD-READY"
        time.sleep(2.0)  # let the pool spawn and shards start hanging
        proc.send_signal(signal.SIGINT)
        try:
            out, _ = proc.communicate(timeout=20)
        except subprocess.TimeoutExpired:
            proc.kill()
            pytest.fail("KeyboardInterrupt did not cancel hung shards")
        assert "INTERRUPTED-CLEANLY" in out
        assert proc.returncode == 130


# ---------------------------------------------------------------------------
# CLI: the fault-policy flags
# ---------------------------------------------------------------------------

class TestCliFaultFlags:
    def test_flags_accepted(self, capsys):
        rc = cli_main([
            "experiment", "e1", "--trials", "4", "--set", "sizes=16",
            "--set", "workloads=balanced", "--serial",
            "--shard-timeout", "30", "--max-retries", "1",
            "--format", "json",
        ])
        assert rc == 0
        from repro.exec.backends import get_fault_policy

        assert get_fault_policy().shard_timeout_s == 30.0
        assert get_fault_policy().max_retries == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["experiment"] == "e1"

    def test_invalid_flags_exit_2(self, capsys):
        assert cli_main([
            "experiment", "e1", "--shard-timeout", "-5",
        ]) == 2
        assert "shard_timeout_s" in capsys.readouterr().err
        assert cli_main([
            "experiment", "e1", "--max-retries", "-1",
        ]) == 2
        assert "max_retries" in capsys.readouterr().err

    @pytest.mark.parametrize("flag,value", [
        ("--shard-timeout", "5s"),
        ("--shard-timeout", "nan"),
        ("--max-retries", "two"),
        ("--max-retries", "1.5"),
    ])
    def test_non_numeric_flags_exit_2_naming_flag(self, capsys, flag, value):
        # Flags are validated post-parse (not by argparse's type=), so
        # the error is ours: exit 2, naming the flag and accepted form.
        assert cli_main(["experiment", "e1", flag, value]) == 2
        err = capsys.readouterr().err
        assert flag in err


# ---------------------------------------------------------------------------
# The heavy end-to-end chaos sweep (CI chaos job: REPRO_CHAOS=1)
# ---------------------------------------------------------------------------

@needs_chaos_env
class TestChaosSweep:
    """The acceptance run: e1 and e10 under the env-described chaos
    schedule (kills + delays + torn writes) are payload-identical to
    unfaulted ``jobs=1`` runs."""

    @pytest.mark.parametrize("name,opts", [
        ("e1", dict(sizes=(16,), workloads=("balanced", "skewed"),
                    trials=10, engine="batch-parity", parallel=False)),
        ("e10", dict(n=24, trials=6, scenarios=("complete", "star"),
                     async_sizes=(16, 32), parallel=False)),
    ])
    def test_experiment_payloads_survive_chaos(self, name, opts):
        cfg = chaos.ChaosConfig.from_env()
        assert cfg is not None
        clean = run_experiment(name, jobs=1, **opts)
        with chaos.install(cfg), fault_policy(
            FaultPolicy(shard_timeout_s=5.0, backoff_base_s=0.01)
        ):
            faulted = run_experiment(name, jobs=2, **opts)
        assert faulted.payload_json() == clean.payload_json()

    def test_multi_seed_chaos_storm(self, tmp_path):
        study = Study("e10", {"trials": [4, 6]}, n=24,
                      scenarios=("complete",), async_sizes=(16,),
                      parallel=False)
        clean = study.run(out_dir=tmp_path / "clean", jobs=1)
        payloads = lambda sr: [c.result.payload_json() for c in sr.cells]
        for seed in (21, 22, 23):
            cfg = chaos.ChaosConfig(seed=seed, kill_rate=0.5,
                                    delay_rate=0.5, delay_s=0.2,
                                    truncate_rate=0.5,
                                    max_faulty_attempts=2)
            out = tmp_path / f"storm-{seed}"
            with chaos.install(cfg), fault_policy(
                FaultPolicy(shard_timeout_s=5.0, max_retries=3,
                            backoff_base_s=0.01)
            ):
                stormed = study.run(out_dir=out, jobs=2)
            assert payloads(stormed) == payloads(clean), seed
            # Resume heals any archives the chaos tore.
            healed = study.run(out_dir=out, jobs=1)
            assert payloads(healed) == payloads(clean), seed
