"""Unit tests for the batched strategy tier (``fastpath/strategies``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.plans import plan
from repro.core.defenses import Defenses
from repro.fastpath.strategies import simulate_strategy_fast_batch
from tests.conftest import two_color_split

COLORS = two_color_split(48, 0.75)   # 36 red, 12 blue
BLUES = [i for i, c in enumerate(COLORS) if c == "blue"]
SEEDS = list(range(80))


def run(strategy, members, *, gamma=2.5, defenses=Defenses(), colors=COLORS,
        seeds=SEEDS, faulty=frozenset()):
    return simulate_strategy_fast_batch(
        colors, seeds, strategy, set(members), gamma=gamma,
        defenses=defenses, faulty=faulty,
    )


class TestPairing:
    def test_honest_shadow_is_a_noop(self):
        res = run("honest_shadow", BLUES[:2])
        assert np.array_equal(res.honest.winner, res.deviant.winner)
        assert np.array_equal(res.honest.total_bits, res.deviant.total_bits)
        assert not res.detected.any()
        assert not res.forged.any()

    def test_honest_side_strategy_independent(self):
        """Paired honest baselines share draws across strategies — a
        property of the fixed draw order, not of the baseline memo
        (which is cleared between the calls here)."""
        import repro.fastpath.strategies as strat

        a = run("silent", BLUES[:2])
        strat._honest_memo["key"] = None
        strat._honest_memo["chunks"] = None
        b = run("griefing", BLUES[:2])
        assert np.array_equal(a.honest.winner, b.honest.winner)
        assert np.array_equal(a.honest.total_bits, b.honest.total_bits)

    def test_honest_memo_matches_fresh_evaluation(self):
        """The second call of a grid replays the honest side from the
        memo; the replay must be identical to a cold evaluation."""
        import repro.fastpath.strategies as strat

        warm = run("silent", BLUES[:2])
        cached = run("vote_switch", BLUES[:1])      # memo hit
        strat._honest_memo["key"] = None
        strat._honest_memo["chunks"] = None
        cold = run("vote_switch", BLUES[:1])        # memo miss
        assert np.array_equal(cached.honest.winner, cold.honest.winner)
        assert np.array_equal(cached.honest.winner, warm.honest.winner)
        assert np.array_equal(cached.deviant.winner, cold.deviant.winner)

    def test_deterministic_in_seeds(self):
        a = run("pooled", BLUES[:4])
        b = run("pooled", BLUES[:4])
        assert np.array_equal(a.deviant.winner, b.deviant.winner)
        assert np.array_equal(a.exposed_members, b.exposed_members)

    def test_accepts_plan_and_name(self):
        by_name = run("silent", BLUES[:2])
        by_plan = simulate_strategy_fast_batch(
            COLORS, SEEDS, plan("silent", frozenset(BLUES[:2])), gamma=2.5,
        )
        assert np.array_equal(by_name.deviant.winner, by_plan.deviant.winner)

    def test_empty_coalition_matches_honest(self):
        res = run(None, ())
        assert np.array_equal(res.honest.winner, res.deviant.winner)
        assert res.honest.success_rate() > 0.9


class TestValidation:
    def test_member_label_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            run("silent", {len(COLORS)})

    def test_faulty_coalition_overlap(self):
        with pytest.raises(ValueError, match="marked faulty"):
            run("silent", {BLUES[0]}, faulty=frozenset({BLUES[0]}))

    def test_plan_without_effects_rejected(self):
        from repro.agents.plans import StrategyPlan
        from repro.agents.base import DeviantAgent

        bare = StrategyPlan(members=frozenset({0}), agent_cls=DeviantAgent)
        with pytest.raises(ValueError, match="effect spec"):
            simulate_strategy_fast_batch(COLORS, SEEDS, bare)


class TestAbstention:
    def test_silent_members_never_win(self):
        res = run("silent", BLUES[:3])
        assert not np.isin(res.deviant.winner, BLUES[:3]).any()
        assert res.deviant.success_rate() > 0.9

    def test_all_blue_silent_blue_never_wins(self):
        res = run("silent", BLUES)
        assert "blue" not in set(res.deviant.outcomes())

    def test_suppress_members_never_win_but_network_converges(self):
        res = run("findmin_suppress", BLUES[:4])
        assert not np.isin(res.deviant.winner, BLUES[:4]).any()
        assert res.deviant.success_rate() > 0.9


class TestForgeries:
    @pytest.mark.parametrize("mode", ["underbid_alter", "underbid_drop",
                                      "underbid_klie", "underbid_fabricate"])
    def test_forgeries_never_win_at_full_defenses(self, mode):
        res = run(mode, BLUES[:1])
        assert res.forged.all()
        assert (res.deviant.winner == -1).all()
        assert res.detected.all()

    def test_klie_wins_without_verify_k(self):
        res = run("underbid_klie", BLUES[:1],
                  defenses=Defenses(verify_k=False))
        wins = sum(1 for o in res.deviant.outcomes() if o == "blue")
        assert wins / len(SEEDS) > 0.9

    def test_alter_wins_without_verify_ledger(self):
        res = run("underbid_alter", BLUES[:1],
                  defenses=Defenses(verify_ledger=False))
        wins = sum(1 for o in res.deviant.outcomes() if o == "blue")
        assert wins / len(SEEDS) > 0.9

    def test_drop_wins_without_verify_omissions(self):
        res = run("underbid_drop", BLUES[:1],
                  defenses=Defenses(verify_omissions=False))
        wins = sum(1 for o in res.deviant.outcomes() if o == "blue")
        assert wins / len(SEEDS) > 0.9

    def test_drop_still_caught_with_omissions_on(self):
        res = run("underbid_drop", BLUES[:1])
        assert res.detected.all()


class TestPooled:
    def test_exposure_gates_forgery(self):
        res = run("pooled", BLUES[:4])
        # At gamma=2.5 every member is exposed w.h.p.: no forgery, the
        # fallback plays honest and the network succeeds.
        assert not res.forged.any()
        assert (res.exposed_members == 4).all()
        assert res.deviant.success_rate() > 0.9

    def test_forges_and_wins_without_commitment(self):
        res = run("pooled", BLUES[:4], defenses=Defenses(commitment=False))
        assert res.forged.all()
        assert (res.exposed_members == 0).all()
        wins = sum(1 for o in res.deviant.outcomes() if o == "blue")
        assert wins / len(SEEDS) > 0.9

    def test_win_rate_decays_with_gamma(self):
        """Lemma 6: the exposure window closes as gamma grows."""
        lo = run("pooled", BLUES[:4], gamma=0.5)
        hi = run("pooled", BLUES[:4], gamma=2.5)
        assert lo.forged.mean() > hi.forged.mean()

    def test_gamble_always_caught(self):
        res = run("pooled_gamble", BLUES[:2])
        assert res.forged.all()
        assert res.detected.all()

    def test_single_member_pooled_cannot_forge(self):
        res = run("pooled", BLUES[:1])
        assert not res.forged.any()


class TestGriefing:
    def test_single_griefer_always_fails_network(self):
        res = run("griefing", BLUES[:1])
        assert res.detected.all()
        assert (res.deviant.winner == -1).all()

    def test_griefer_harmless_without_coherence_check(self):
        res = run("griefing", BLUES[:1],
                  defenses=Defenses(coherence=False))
        # Receivers ignore mismatching pushes: the bogus certificates
        # change nothing (the griefer is otherwise honest).
        assert res.deviant.success_rate() > 0.9


class TestAblations:
    def test_starvation_gamma_splits_without_coherence(self):
        on = run(None, (), gamma=0.75)
        off = run(None, (), gamma=0.75, defenses=Defenses(coherence=False))
        # With coherence the starved runs surface as ⊥ and never as a
        # silent split; without it the same draws split silently.
        assert not on.split.any()
        assert off.split.mean() > 0.2
        assert off.split.sum() <= (off.deviant.winner == -1).sum()

    def test_split_and_detected_disjoint(self):
        res = run(None, (), gamma=0.75)
        assert not (res.split & res.detected).any()


class TestFaults:
    def test_strategy_tier_handles_crash_faults(self):
        faulty = frozenset(range(4))
        res = run("silent", BLUES[:2], faulty=faulty, gamma=4.0)
        assert (res.honest.n_active == len(COLORS) - 4).all()
        assert not np.isin(res.deviant.winner, list(faulty)).any()
        assert res.honest.success_rate() > 0.9
