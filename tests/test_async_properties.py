"""Property-based tests (hypothesis) for the sequential GOSSIP model.

The properties pin what the open-problem explorations ride on:

* the tick count of sequential min-aggregation depends on the values
  only through their *order* — any strictly monotone relabelling of the
  value vector leaves the trajectory unchanged (so measuring with draws
  in ``[n^3]``, ranks, or floats is the same experiment);
* the holder count (agents holding the global active minimum) is
  monotone non-decreasing tick by tick, and convergence means exactly
  "all active agents hold it";
* faulty agents never acquire the minimum (they never wake) and never
  leak their value into the active population (pulling them times out);
* the lockstep batch tier agrees with the scalar reference tier
  seed-for-seed, for min-aggregation and for the leader election;
* the election's int64 ``(draw, label)`` keys preserve the exact
  lexicographic order at sizes where the replaced float encoding
  provably collapses neighbouring labels (the ``n^4 > 2^53`` hazard).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.extensions.async_gossip import (
    async_min_ticks,
    async_min_ticks_batch,
    async_min_trace,
    election_keys,
    run_async_leader_election,
    run_async_leader_election_batch,
)
from repro.util.rng import SeedTree

seeds_st = st.integers(0, 2 ** 31 - 1)
values_st = st.lists(st.integers(0, 500), min_size=2, max_size=24)


def _faulty_st(n: int):
    return st.sets(st.integers(0, n - 1), max_size=n - 1).map(frozenset)


@settings(max_examples=40, deadline=None)
@given(values_st, seeds_st, st.integers(1, 9), st.integers(0, 100))
def test_ticks_invariant_under_monotone_relabelling(values, seed, a, b):
    """Affine (and rank) relabellings preserve every comparison, hence
    the whole trajectory and the tick count."""
    base = async_min_ticks(values, seed=seed)
    affine = [a * v + b for v in values]
    assert async_min_ticks(affine, seed=seed) == base
    ranks = {v: r for r, v in enumerate(sorted(set(values)))}
    assert async_min_ticks([ranks[v] for v in values], seed=seed) == base
    assert async_min_ticks([float(v) for v in values], seed=seed) == base


@settings(max_examples=40, deadline=None)
@given(values_st, seeds_st)
def test_holders_monotone_and_converged_means_all(values, seed):
    trace = async_min_trace(values, seed=seed, max_ticks=2000)
    holders = trace.holders
    assert all(b >= a for a, b in zip(holders, holders[1:]))
    assert len(holders) == trace.ticks
    target = min(values)
    final_holders = int((trace.final_values == target).sum())
    if trace.converged:
        assert final_holders == len(values)
        # An all-minimum start converges at tick 0 with an empty log.
        assert (holders[-1] if holders else final_holders) == len(values)


@settings(max_examples=40, deadline=None)
@given(st.integers(4, 16).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 500), min_size=n, max_size=n),
        _faulty_st(n), seeds_st,
    )
))
def test_faulty_agents_never_acquire_or_leak_the_minimum(case):
    values, faulty, seed = case
    n = len(values)
    if len(faulty) >= n:
        return
    trace = async_min_trace(values, seed=seed, max_ticks=3000, faulty=faulty)
    initial = np.array(values)
    active = np.ones(n, dtype=bool)
    if faulty:
        active[list(faulty)] = False
    # Faulty agents never wake: their value is frozen.
    assert (trace.final_values[~active] == initial[~active]).all()
    # Faulty values never circulate: every active agent's final value is
    # one it could have pulled from the active population.
    target = initial[active].min()
    assert (trace.final_values[active] >= target).all()
    active_initial = set(initial[active].tolist())
    for v in trace.final_values[active].tolist():
        assert v in active_initial
    if trace.converged:
        assert (trace.final_values[active] == target).all()


@settings(max_examples=25, deadline=None)
@given(
    st.integers(2, 12),
    st.integers(1, 5),
    seeds_st,
    st.booleans(),
)
def test_batch_tier_matches_scalar_tier_seed_for_seed(
    n, n_trials, seed0, with_faulty
):
    seeds = [seed0 + 7 * i for i in range(n_trials)]
    values = np.stack([
        SeedTree(s).child("vals").generator().integers(n ** 3, size=n)
        for s in seeds
    ])
    faulty = frozenset({0}) if with_faulty and n > 2 else frozenset()
    max_ticks = 600
    scalar = [
        async_min_ticks(values[b], seed=s, max_ticks=max_ticks,
                        faulty=faulty)
        for b, s in enumerate(seeds)
    ]
    batch = async_min_ticks_batch(values, seeds, max_ticks=max_ticks,
                                  faulty=faulty)
    assert batch.tolist() == scalar


@settings(max_examples=15, deadline=None)
@given(st.integers(4, 24), st.integers(1, 4), seeds_st)
def test_election_batch_matches_scalar_seed_for_seed(n, n_trials, seed0):
    colors = [f"c{i % 3}" for i in range(n)]
    seeds = [seed0 + 11 * i for i in range(n_trials)]
    conv, winner, ticks = run_async_leader_election_batch(colors, seeds)
    for b, s in enumerate(seeds):
        el = run_async_leader_election(colors, seed=s)
        assert bool(conv[b]) == el.converged
        assert int(winner[b]) == (
            el.winner if el.winner is not None else -1
        )
        assert int(ticks[b]) == el.ticks


class TestElectionKeyPrecision:
    """Regression for the float-key hazard: ``draws * n + label`` in
    float64 loses the lexicographic order once ``n^4 > 2^53``."""

    N_BIG = 1 << 14  # n^4 = 2^56 > 2^53: float keys provably collide

    def test_float_encoding_collides_where_int64_does_not(self):
        x = self.N_BIG ** 3 - 5
        f1, f2 = float(x * self.N_BIG + 1), float(x * self.N_BIG + 2)
        assert f1 == f2                      # the hazard this PR removes
        assert x * self.N_BIG + 1 != x * self.N_BIG + 2

    def test_keys_are_exact_int64_and_lexicographic(self):
        keys = election_keys(self.N_BIG, seed=42)
        assert keys.dtype == np.int64
        draws = keys // self.N_BIG
        labels = keys % self.N_BIG
        assert np.array_equal(labels, np.arange(self.N_BIG))
        # Sorting by key is exactly the lexicographic (draw, label) sort.
        assert np.array_equal(
            np.argsort(keys, kind="stable"),
            np.lexsort((labels, draws)),
        )
        # Equal draws are strictly ordered by label (floats would tie).
        dup = np.flatnonzero(draws[:-1] == draws[1:])
        for i in dup.tolist():
            assert keys[i] < keys[i + 1]

    def test_faulty_keys_are_sentinels(self):
        keys = election_keys(64, seed=3, faulty=frozenset({5, 9}))
        assert keys[5] == np.iinfo(np.int64).max
        assert keys[9] == np.iinfo(np.int64).max
        assert int(np.argmin(keys)) not in {5, 9}

    def test_oversized_n_rejected(self):
        with np.errstate(over="ignore"):
            try:
                election_keys(1 << 16, seed=0)
            except ValueError as e:
                assert "int64" in str(e)
            else:  # pragma: no cover
                raise AssertionError("expected the int64 guard to fire")
