"""Tests for the baseline protocols (LOCAL, naive gossip, polling)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.baselines.local_broadcast import run_local_fair_election
from repro.baselines.naive_gossip import run_naive_gossip
from repro.baselines.polling import run_polling
from tests.conftest import two_color_split


class TestLocalBroadcast:
    def test_outcome_is_a_valid_color(self):
        colors = two_color_split(32, 0.5)
        res = run_local_fair_election(colors, seed=1)
        assert res.outcome in {"red", "blue"}
        assert colors[res.winner] == res.outcome

    def test_message_count_is_quadratic(self):
        colors = two_color_split(50, 0.5)
        res = run_local_fair_election(colors, seed=2)
        assert res.messages == 2 * 50 * 49

    def test_faulty_agents_excluded(self):
        colors = two_color_split(32, 0.5)
        faulty = frozenset(range(8))
        res = run_local_fair_election(colors, seed=3, faulty=faulty)
        assert res.winner not in faulty
        assert res.messages == 2 * 24 * 31

    def test_memory_is_linear(self):
        res = run_local_fair_election(two_color_split(64, 0.5), seed=4)
        assert res.local_memory_entries == 64

    def test_two_rounds_only(self):
        res = run_local_fair_election(two_color_split(16, 0.5), seed=5)
        assert res.rounds == 2

    def test_deterministic(self):
        colors = two_color_split(32, 0.5)
        a = run_local_fair_election(colors, seed=7)
        b = run_local_fair_election(colors, seed=7)
        assert a == b

    def test_fairness_shape(self):
        # Winner uniform over agents: with 75/25 colors, red should win
        # roughly 3x as often as blue.
        colors = two_color_split(40, 0.75)
        wins = Counter(
            run_local_fair_election(colors, seed=s).outcome
            for s in range(200)
        )
        assert 0.6 < wins["red"] / 200 < 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            run_local_fair_election(["a"])
        with pytest.raises(ValueError):
            run_local_fair_election(["a", "b"], faulty=frozenset({0, 1}))


class TestNaiveGossip:
    def test_honest_run_elects_someone(self):
        res = run_naive_gossip(two_color_split(32, 0.5), seed=1)
        assert res.outcome in {"red", "blue"}
        assert not res.cheater_won

    def test_cheater_always_wins(self):
        colors = two_color_split(32, 0.9)  # cheater supports 10% blue
        blue0 = colors.index("blue")
        for s in range(10):
            res = run_naive_gossip(colors, seed=s,
                                   cheaters=frozenset({blue0}))
            assert res.cheater_won
            assert res.outcome == "blue"

    def test_message_complexity_subquadratic(self):
        n = 128
        res = run_naive_gossip(two_color_split(n, 0.5), seed=2)
        assert res.messages < n * n

    def test_faulty_tolerated(self):
        colors = two_color_split(32, 0.5)
        res = run_naive_gossip(colors, seed=3, gamma=5.0,
                               faulty=frozenset(range(8)))
        assert res.outcome is not None
        assert res.winner >= 8

    def test_too_small_network_rejected(self):
        with pytest.raises(ValueError):
            run_naive_gossip(["only"])


class TestPolling:
    def test_converges_to_valid_color(self):
        res = run_polling(two_color_split(32, 0.5), seed=1)
        assert res.converged
        assert res.outcome in {"red", "blue"}

    def test_monochromatic_is_instant(self):
        res = run_polling(["x"] * 16, seed=2)
        assert res.converged and res.outcome == "x"
        assert res.rounds <= 1

    def test_stubborn_agent_wins_when_converged(self):
        colors = two_color_split(24, 0.9)
        blue0 = colors.index("blue")
        won = 0
        for s in range(8):
            res = run_polling(colors, seed=s, stubborn=frozenset({blue0}),
                              max_rounds=20000)
            if res.converged:
                assert res.outcome == "blue"
                assert res.stubborn_won
                won += 1
        assert won >= 6  # absorption at the stubborn color is typical

    def test_takes_many_more_rounds_than_log_n(self):
        import math
        n = 64
        rounds = [
            run_polling(two_color_split(n, 0.5), seed=s).rounds
            for s in range(5)
        ]
        assert sum(rounds) / len(rounds) > 3 * math.log2(n)

    def test_faulty_agents_do_not_block(self):
        colors = two_color_split(32, 0.5)
        res = run_polling(colors, seed=4, faulty=frozenset(range(8)))
        assert res.converged

    def test_respects_max_rounds_cap(self):
        colors = two_color_split(64, 0.5)
        res = run_polling(colors, seed=5, max_rounds=2)
        assert res.rounds <= 2
        if not res.converged:
            assert res.outcome is None
