"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from golden_opts import GOLDEN_OPTS
from repro.cli import build_parser, main
from repro.experiments.registry import experiment_names
from repro.results import load_result


def _set_args(name: str, *, exclude: tuple[str, ...] = ()) -> list[str]:
    """GOLDEN_OPTS as ``--set`` overrides (tiny, fixed-seed settings)."""
    args = []
    for field, value in GOLDEN_OPTS[name].items():
        if field in exclude:
            continue
        text = (",".join(str(v) for v in value)
                if isinstance(value, tuple) else str(value))
        args += ["--set", f"{field}={text}"]
    return args


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.n == 100 and args.split == 60

    def test_experiment_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "e99"])

    def test_strategy_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--strategy", "bribe"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunCommand:
    def test_basic_run_prints_outcome(self, capsys):
        rc = main(["run", "--n", "32", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "outcome" in out
        assert "'red'" in out or "'blue'" in out

    def test_run_with_faults(self, capsys):
        rc = main(["run", "--n", "32", "--faults", "8", "--gamma", "4",
                   "--seed", "1"])
        assert rc == 0
        assert "outcome" in capsys.readouterr().out

    def test_run_with_attack_reports_failure(self, capsys):
        rc = main(["run", "--n", "32", "--split", "75",
                   "--strategy", "underbid_alter", "--seed", "2"])
        out = capsys.readouterr().out
        assert rc == 0  # attacked runs report status, exit 0
        assert "None" in out  # the lie was caught -> outcome ⊥

    def test_run_coalition_too_large(self, capsys):
        rc = main(["run", "--n", "10", "--split", "90",
                   "--strategy", "silent", "--coalition", "5"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_monochromatic_via_split_100(self, capsys):
        rc = main(["run", "--n", "16", "--split", "100", "--seed", "4"])
        assert rc == 0
        assert "'red'" in capsys.readouterr().out


class TestExperimentCommand:
    def test_e1_tiny(self, capsys):
        rc = main(["experiment", "e1", "--trials", "30", "--serial"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Fairness" in out
        assert "balanced" in out

    def test_e4_prints_two_tables(self, capsys):
        rc = main(["experiment", "e4", "--trials", "3", "--serial"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Communication" in out
        assert "Shape fits" in out


class TestExperimentJSONSmoke:
    """Every experiment runs end-to-end through the JSON-first CLI."""

    @pytest.mark.parametrize("name", experiment_names())
    def test_json_format(self, name, capsys):
        rc = main(["experiment", name, "--format", "json", *_set_args(name)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.experiment-result/v1"
        assert doc["experiment"] == name
        assert doc["sections"] and doc["sections"][0]["rows"]
        assert doc["meta"]["version"]

    def test_out_dir_round_trips(self, tmp_path, capsys):
        rc = main(["experiment", "e1", "--format", "json",
                   "--out", str(tmp_path), *_set_args("e1")])
        assert rc == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        files = list(tmp_path.glob("e1-*.json"))
        assert len(files) == 1
        assert str(files[0]) in captured.err  # "saved:" note
        loaded = load_result(files[0])
        assert loaded.to_json_dict() == doc

    def test_csv_format(self, capsys):
        rc = main(["experiment", "e2", "--format", "csv", *_set_args("e2")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# E2  Round complexity" in out
        assert out.count("# E2") == 2  # one comment header per section
        assert "n,q,schedule rounds" in out

    def test_trials_shortcut_equals_set(self, capsys):
        rc = main(["experiment", "e1", "--trials", "7", "--format", "json",
                   *_set_args("e1", exclude=("trials",))])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["options"]["trials"] == 7

    def test_conflicting_trials_flag_and_set(self, capsys):
        rc = main(["experiment", "e1", "--trials", "7",
                   "--set", "trials=40"])
        assert rc == 2
        assert "conflicting" in capsys.readouterr().err

    def test_all_validates_before_running(self, capsys):
        # A value invalid for a later experiment must exit 2 before any
        # experiment runs (no partial output or archives).
        rc = main(["experiment", "all", "--set", "n=4.5"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "n" in captured.err
        assert captured.out == ""


class TestOverrideValidation:
    def test_unknown_field_exits_2_with_valid_fields(self, capsys):
        rc = main(["experiment", "e1", "--set", "bogus=1"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown option field 'bogus'" in err
        # the message enumerates the dataclass fields
        for field in ("sizes", "workloads", "trials", "gamma", "seed"):
            assert field in err

    def test_malformed_pair_exits_2(self, capsys):
        rc = main(["experiment", "e1", "--set", "trials"])
        assert rc == 2
        assert "FIELD=VALUE" in capsys.readouterr().err

    def test_bad_value_exits_2(self, capsys):
        rc = main(["experiment", "e1", "--set", "trials=lots"])
        assert rc == 2
        assert "trials" in capsys.readouterr().err

    def test_bad_bool_exits_2(self, capsys):
        rc = main(["experiment", "e1", "--set", "parallel=maybe"])
        assert rc == 2
        assert "boolean" in capsys.readouterr().err

    def test_sequence_coercion(self, capsys):
        rc = main(["experiment", "e1", "--format", "json", "--serial",
                   "--set", "sizes=16,24", "--set", "workloads=balanced",
                   "--set", "trials=4"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["options"]["sizes"] == [16, 24]
        assert doc["options"]["workloads"] == ["balanced"]
        assert doc["options"]["parallel"] is False


class TestExperimentAll:
    def test_all_runs_each_registered_experiment(self, monkeypatch, capsys):
        from repro.experiments import registry

        # Shrink the registry so "all" stays a tiny workload.
        monkeypatch.setattr(registry, "_MODULE_BY_NAME", {
            "e1": "repro.experiments.e1_fairness",
            "e2": "repro.experiments.e2_rounds",
        })
        rc = main(["experiment", "all", "--format", "json",
                   "--set", "sizes=16,24", "--set", "workloads=balanced",
                   "--set", "trials=4", "--serial"])
        captured = capsys.readouterr()
        assert rc == 0
        docs, idx, dec = [], 0, json.JSONDecoder()
        while idx < len(captured.out):
            if captured.out[idx].isspace():
                idx += 1
                continue
            doc, idx = dec.raw_decode(captured.out, idx)
            docs.append(doc)
        assert [d["experiment"] for d in docs] == ["e1", "e2"]
        # e2 has no 'workloads' field: skipped with a note, not an error.
        assert "skipped" in captured.err


class TestListCommand:
    def test_lists_everything(self, capsys):
        rc = main(["list"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "underbid_alter" in out
        assert "leader_election" in out
        assert "e10" in out

    def test_json_listing_machine_readable(self, capsys):
        rc = main(["list", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert "underbid_alter" in doc["strategies"]
        assert "leader_election" in doc["workloads"]
        by_name = {e["name"]: e for e in doc["experiments"]}
        assert sorted(by_name) == sorted(experiment_names())
        e1 = by_name["e1"]
        assert e1["options"]["trials"] == 400
        assert e1["options_type"].endswith("E1Options")
        assert e1["title"] and e1["claim"]
