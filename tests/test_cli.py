"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.n == 100 and args.split == 60

    def test_experiment_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "e99"])

    def test_strategy_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--strategy", "bribe"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunCommand:
    def test_basic_run_prints_outcome(self, capsys):
        rc = main(["run", "--n", "32", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "outcome" in out
        assert "'red'" in out or "'blue'" in out

    def test_run_with_faults(self, capsys):
        rc = main(["run", "--n", "32", "--faults", "8", "--gamma", "4",
                   "--seed", "1"])
        assert rc == 0
        assert "outcome" in capsys.readouterr().out

    def test_run_with_attack_reports_failure(self, capsys):
        rc = main(["run", "--n", "32", "--split", "75",
                   "--strategy", "underbid_alter", "--seed", "2"])
        out = capsys.readouterr().out
        assert rc == 0  # attacked runs report status, exit 0
        assert "None" in out  # the lie was caught -> outcome ⊥

    def test_run_coalition_too_large(self, capsys):
        rc = main(["run", "--n", "10", "--split", "90",
                   "--strategy", "silent", "--coalition", "5"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_monochromatic_via_split_100(self, capsys):
        rc = main(["run", "--n", "16", "--split", "100", "--seed", "4"])
        assert rc == 0
        assert "'red'" in capsys.readouterr().out


class TestExperimentCommand:
    def test_e1_tiny(self, capsys):
        rc = main(["experiment", "e1", "--trials", "30", "--serial"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Fairness" in out
        assert "balanced" in out

    def test_e4_prints_two_tables(self, capsys):
        rc = main(["experiment", "e4", "--trials", "3", "--serial"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Communication" in out
        assert "Shape fits" in out


class TestListCommand:
    def test_lists_everything(self, capsys):
        rc = main(["list"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "underbid_alter" in out
        assert "leader_election" in out
        assert "e10" in out
