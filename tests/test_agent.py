"""Unit tests for the honest agent's per-phase behaviour (white box).

These drive a single :class:`HonestAgent` directly — no engine — so each
rule of Algorithm 1 is pinned in isolation.
"""

from __future__ import annotations

import pytest

from repro.core.agent import TOPIC_CERTIFICATE, TOPIC_INTENTION, HonestAgent
from repro.core.certificate import Certificate, CertificatePayload, ReceivedVote
from repro.core.defenses import Defenses
from repro.core.outcome import FailReason
from repro.core.params import Phase, ProtocolParams
from repro.core.votes import IntentionPayload, VotePayload
from repro.gossip.actions import Pull, Push
from repro.gossip.messages import NO_REPLY
from repro.util.rng import SeedTree


@pytest.fixture
def params() -> ProtocolParams:
    return ProtocolParams(n=16, gamma=1.0)  # q = 4


@pytest.fixture
def agent(params) -> HonestAgent:
    return HonestAgent(3, params, "teal", SeedTree(99))


def round_in(params: ProtocolParams, phase: Phase, idx: int = 0) -> int:
    return params.phase_range(phase).start + idx


class TestActions:
    def test_commitment_rounds_pull_intentions(self, agent, params):
        for idx in range(params.q):
            action = agent.begin_round(round_in(params, Phase.COMMITMENT, idx))
            assert isinstance(action, Pull)
            assert action.topic == TOPIC_INTENTION
            assert action.target != agent.node_id

    def test_voting_rounds_push_planned_votes(self, agent, params):
        for idx in range(params.q):
            action = agent.begin_round(round_in(params, Phase.VOTING, idx))
            assert isinstance(action, Push)
            planned = agent.intention[idx]
            assert action.target == planned.target
            assert isinstance(action.payload, VotePayload)
            assert action.payload.value == planned.value

    def test_find_min_builds_certificate_then_pulls(self, agent, params):
        assert agent.certificate is None
        action = agent.begin_round(round_in(params, Phase.FIND_MIN))
        assert isinstance(action, Pull)
        assert action.topic == TOPIC_CERTIFICATE
        assert agent.certificate is not None
        assert agent.min_certificate == agent.certificate

    def test_coherence_pushes_current_minimum(self, agent, params):
        agent.begin_round(round_in(params, Phase.FIND_MIN))
        action = agent.begin_round(round_in(params, Phase.COHERENCE))
        assert isinstance(action, Push)
        assert isinstance(action.payload, CertificatePayload)
        assert action.payload.certificate == agent.min_certificate


class TestPassiveBehaviour:
    def test_serves_intention_pulls_and_records_requester(self, agent, params):
        reply = agent.on_pull_request(7, TOPIC_INTENTION,
                                      round_in(params, Phase.COMMITMENT))
        assert isinstance(reply, IntentionPayload)
        assert reply.intention == agent.intention
        assert agent.commitment_pulls_received == [7]

    def test_certificate_pull_before_build_gets_no_reply(self, agent, params):
        reply = agent.on_pull_request(7, TOPIC_CERTIFICATE,
                                      round_in(params, Phase.COMMITMENT))
        assert reply is NO_REPLY

    def test_unknown_topic_no_reply(self, agent, params):
        assert agent.on_pull_request(7, "gossip-me-your-secrets", 0) is NO_REPLY

    def test_votes_collected_only_in_voting_phase(self, agent, params):
        vote = VotePayload(123, params.vote_message_bits())
        agent.on_push(5, vote, round_in(params, Phase.COMMITMENT))
        assert agent.received_votes == []
        agent.on_push(5, vote, round_in(params, Phase.VOTING, 2))
        assert agent.received_votes == [ReceivedVote(5, 2, 123)]

    def test_commitment_timeout_marks_faulty(self, agent, params):
        agent.on_pull_timeout(9, round_in(params, Phase.COMMITMENT))
        assert agent.ledger.record_for(9).marked_faulty

    def test_findmin_timeout_ignored(self, agent, params):
        agent.on_pull_timeout(9, round_in(params, Phase.FIND_MIN))
        assert not agent.ledger.knows(9)

    def test_malformed_commitment_reply_marks_faulty(self, agent, params):
        # "Replies in an unexpected way" (footnote 4): wrong-length list.
        from repro.core.votes import PlannedVote, VoteIntention
        bad = IntentionPayload(VoteIntention((PlannedVote(1, 2),)), 10)
        agent.on_pull_reply(9, bad, round_in(params, Phase.COMMITMENT))
        assert agent.ledger.record_for(9).marked_faulty


class TestFindMinAdoption:
    def make_cert(self, params, k, owner, color="x"):
        return Certificate(k, (), color, owner)

    def payload(self, params, cert):
        return CertificatePayload(cert, cert.size_bits(params))

    def test_adopts_smaller_k(self, agent, params):
        # Receive one vote so our own k is non-zero, then see a k=0 cert.
        agent.on_push(5, VotePayload(77, params.vote_message_bits()),
                      round_in(params, Phase.VOTING, 0))
        agent.begin_round(round_in(params, Phase.FIND_MIN))
        assert agent.certificate.k == 77
        low = self.make_cert(params, 0, 9)
        agent.on_pull_reply(9, self.payload(params, low),
                            round_in(params, Phase.FIND_MIN, 1))
        assert agent.min_certificate == low

    def test_ignores_larger_k(self, agent, params):
        agent.begin_round(round_in(params, Phase.FIND_MIN))
        mine = agent.min_certificate
        high = self.make_cert(params, params.m - 1, 9)
        agent.on_pull_reply(9, self.payload(params, high),
                            round_in(params, Phase.FIND_MIN, 1))
        assert agent.min_certificate == mine

    def test_tie_breaks_toward_smaller_owner(self, agent, params):
        agent.begin_round(round_in(params, Phase.FIND_MIN))
        k = agent.certificate.k
        smaller_owner = self.make_cert(params, k, min(0, agent.node_id - 1))
        agent.on_pull_reply(0, self.payload(params, smaller_owner),
                            round_in(params, Phase.FIND_MIN, 1))
        assert agent.min_certificate == smaller_owner


class TestCoherenceAndFinalize:
    def test_mismatching_certificate_fails_agent(self, agent, params):
        agent.begin_round(round_in(params, Phase.FIND_MIN))
        other = Certificate(1, (), "y", 9)
        agent.on_push(9, CertificatePayload(other, 10),
                      round_in(params, Phase.COHERENCE))
        assert agent.failed
        assert agent.fail_reason is FailReason.COHERENCE_MISMATCH

    def test_matching_certificate_keeps_agent_healthy(self, agent, params):
        agent.begin_round(round_in(params, Phase.FIND_MIN))
        same = agent.min_certificate
        agent.on_push(9, CertificatePayload(same, 10),
                      round_in(params, Phase.COHERENCE))
        assert not agent.failed

    def test_finalize_accepts_own_consistent_certificate(self, agent, params):
        agent.begin_round(round_in(params, Phase.FIND_MIN))
        agent.finalize()
        assert agent.decision == "teal"  # own empty-W cert is consistent

    def test_finalize_after_failure_decides_nothing(self, agent, params):
        agent.begin_round(round_in(params, Phase.FIND_MIN))
        agent._fail(FailReason.COHERENCE_MISMATCH)
        agent.finalize()
        assert agent.decision is None

    def test_finalize_rejects_inconsistent_certificate(self, agent, params):
        agent.begin_round(round_in(params, Phase.FIND_MIN))
        agent.min_certificate = Certificate(0, (ReceivedVote(5, 0, 77),),
                                            "y", 9)  # k != sum
        agent.finalize()
        assert agent.failed
        assert agent.fail_reason is FailReason.VERIFICATION_FAILED


class TestDefenseToggles:
    def test_commitment_off_idles(self, params):
        a = HonestAgent(3, params, "c", SeedTree(1),
                        defenses=Defenses(commitment=False))
        assert a.begin_round(round_in(params, Phase.COMMITMENT)) is None

    def test_coherence_off_idles_and_never_fails(self, params):
        a = HonestAgent(3, params, "c", SeedTree(1),
                        defenses=Defenses(coherence=False))
        a.begin_round(round_in(params, Phase.FIND_MIN))
        assert a.begin_round(round_in(params, Phase.COHERENCE)) is None
        other = Certificate(1, (), "y", 9)
        a.on_push(9, CertificatePayload(other, 10),
                  round_in(params, Phase.COHERENCE))
        assert not a.failed

    def test_verify_k_off_accepts_k_lie(self, params):
        a = HonestAgent(3, params, "c", SeedTree(1),
                        defenses=Defenses(verify_k=False))
        a.begin_round(round_in(params, Phase.FIND_MIN))
        a.min_certificate = Certificate(0, (ReceivedVote(5, 0, 77),), "y", 9)
        a.finalize()
        assert a.decision == "y"
