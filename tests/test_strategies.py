"""Tests for the rational deviation strategies (Theorem 7's machinery).

Each strategy must (a) respect the communication model, and (b) produce
the outcome the equilibrium proof predicts: forgeries detected -> ⊥,
abstention fair-over-remaining, pooled attack falling back to honesty
when exposed.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.agents.plans import STRATEGY_NAMES, plan
from repro.core.protocol import ProtocolConfig, run_protocol
from tests.conftest import two_color_split


def run_with(strategy: str, members: set[int], seed: int = 0, n: int = 48,
             gamma: float = 2.5):
    colors = two_color_split(n, 0.75)  # members support the 25% blue
    blues = [i for i, c in enumerate(colors) if c == "blue"]
    chosen = frozenset(blues[: len(members)]) if members else frozenset()
    cfg = ProtocolConfig(
        colors=colors, gamma=gamma, seed=seed,
        deviation=plan(strategy, chosen) if chosen else None,
    )
    return run_protocol(cfg)


class TestPlanRegistry:
    def test_all_names_buildable(self):
        for name in STRATEGY_NAMES:
            p = plan(name, {0, 1})
            assert p.members == frozenset({0, 1})
            assert p.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            plan("quantum_bribery", {0})


class TestHonestShadow:
    def test_doing_nothing_changes_nothing(self):
        """A coalition running the honest algorithm is not detectable."""
        res = run_with("honest_shadow", {0, 1}, seed=3)
        assert res.succeeded

    def test_exposure_is_recorded(self):
        res = run_with("honest_shadow", {0, 1}, seed=4)
        nodes = res.extras["nodes"]
        member = next(
            n for n in nodes.values() if type(n).__name__ == "DeviantAgent"
        )
        # At gamma=2.5, every agent is pulled by some honest agent w.h.p.
        assert member.shared.exposed(member.node_id)


class TestUnderbid:
    @pytest.mark.parametrize("mode", ["underbid_alter", "underbid_drop",
                                      "underbid_klie", "underbid_fabricate"])
    def test_forgeries_never_win(self, mode):
        outcomes = [run_with(mode, {0}, seed=s) for s in range(4)]
        # The forged k=0 certificate spreads (it beats every honest k),
        # but Verification rejects it: the protocol must fail, and the
        # attacker's color must never be declared the winner.
        for res in outcomes:
            assert res.outcome is None
            assert res.failed_agents  # honest agents detected the forgery

    def test_forged_certificate_spreads_before_detection(self):
        res = run_with("underbid_alter", {0}, seed=1)
        nodes = res.extras["nodes"]
        honest = [a for a in nodes.values()
                  if type(a).__name__ == "HonestAgent"]
        # Find-Min converged on the forged minimum (k=0 beats everyone):
        forged_holders = [
            a for a in honest
            if a.min_certificate is not None and a.min_certificate.k == 0
        ]
        assert len(forged_holders) >= len(honest) // 2

    def test_invalid_mode_rejected(self):
        from repro.agents.underbid import ForgedCertificateAgent
        from repro.agents.coalition import CoalitionState
        from repro.core.params import ProtocolParams
        from repro.util.rng import SeedTree

        params = ProtocolParams(n=8)
        shared = CoalitionState(params, frozenset({0}), SeedTree(0))
        with pytest.raises(ValueError):
            ForgedCertificateAgent(0, params, "c", SeedTree(1), shared,
                                   mode="wish_really_hard")


class TestSilent:
    def test_network_still_succeeds(self):
        res = run_with("silent", {0, 1}, seed=2)
        assert res.succeeded

    def test_abstention_is_fair_over_remaining(self):
        # With ALL blue supporters silent, blue can never win.
        n = 32
        colors = two_color_split(n, 0.75)
        blues = frozenset(i for i, c in enumerate(colors) if c == "blue")
        outcomes = Counter()
        for s in range(6):
            cfg = ProtocolConfig(colors=colors, gamma=3.0, seed=s,
                                 deviation=plan("silent", blues))
            outcomes[run_protocol(cfg).outcome] += 1
        assert set(outcomes) == {"red"}


class TestPretendFaulty:
    def test_member_marked_faulty_by_pullers(self):
        res = run_with("pretend_faulty", {0}, seed=5)
        nodes = res.extras["nodes"]
        member_id = next(
            i for i, a in nodes.items()
            if type(a).__name__ == "PretendFaultyAgent"
        )
        honest = [a for a in nodes.values()
                  if type(a).__name__ == "HonestAgent"]
        markers = [
            a for a in honest
            if a.ledger.knows(member_id)
            and a.ledger.record_for(member_id).marked_faulty
        ]
        assert markers  # someone pulled him and recorded the timeout

    def test_never_wins_at_most_fails(self):
        results = [run_with("pretend_faulty", {0}, seed=s) for s in range(6)]
        for res in results:
            if res.succeeded:
                # Won only if legitimately elected among actives — his own
                # cert can win (it is honest!), that's fine; what cannot
                # happen is a forged advantage. We check no systematic win.
                assert res.outcome in {"red", "blue"}
        fails = sum(1 for r in results if not r.succeeded)
        wins = sum(1 for r in results if r.outcome == "blue")
        # Either detected (fail) or neutral; never a blue sweep.
        assert wins < len(results)
        assert fails + wins <= len(results)


class TestEquivocate:
    def test_equivocation_lands_in_ledgers(self):
        res = run_with("equivocate", {0}, seed=6)
        nodes = res.extras["nodes"]
        member_id = next(
            i for i, a in nodes.items()
            if type(a).__name__ == "EquivocatingAgent"
        )
        honest = [a for a in nodes.values()
                  if type(a).__name__ == "HonestAgent"]
        two_versions = [
            a for a in honest if a.ledger.is_equivocator(member_id)
        ]
        # With q pulls per agent someone almost surely pulled him twice...
        # but not guaranteed at this size; the robust assertion is that
        # at least the union of versions across ledgers exceeds one.
        versions_seen = set()
        for a in honest:
            rec = a.ledger.record_for(member_id)
            if rec:
                for v in rec.versions:
                    versions_seen.add(id(v) and tuple(v.votes))
        assert len(versions_seen) >= 1
        del two_versions


class TestGriefing:
    def test_griefing_always_fails_network(self):
        for s in range(4):
            res = run_with("griefing", {0}, seed=s)
            assert res.outcome is None
            assert any(
                reason.name == "COHERENCE_MISMATCH"
                for reason in res.fail_reasons.values()
            )


class TestPooled:
    def test_falls_back_to_honest_when_exposed(self):
        res = run_with("pooled", {0, 1, 2}, seed=7)
        nodes = res.extras["nodes"]
        shared = next(
            a for a in nodes.values()
            if type(a).__name__ == "PooledAttackAgent"
        ).shared
        assert shared.prepared
        # At gamma=2.5 every member is exposed w.h.p. -> no forgery.
        assert shared.forged is None
        assert res.succeeded

    def test_forges_and_wins_without_commitment_phase(self):
        # Remove the Commitment phase (ablation): no member is ever
        # exposed, so the pooled attack forges undetectably and wins.
        # This is the positive control showing the attack is real — the
        # full protocol's ONLY shield against it is commitment coverage.
        from repro.core.defenses import Defenses

        n = 48
        colors = two_color_split(n, 0.75)
        blues = [i for i, c in enumerate(colors) if c == "blue"]
        wins = 0
        for s in range(6):
            cfg = ProtocolConfig(
                colors=colors, gamma=2.5, seed=s,
                deviation=plan("pooled", frozenset(blues[:4])),
                defenses=Defenses(commitment=False),
            )
            res = run_protocol(cfg)
            nodes = res.extras["nodes"]
            shared = next(
                a for a in nodes.values()
                if type(a).__name__ == "PooledAttackAgent"
            ).shared
            assert shared.forged is not None  # nobody exposed -> forge
            if res.outcome == "blue":
                wins += 1
        assert wins == 6  # the forged k=0 certificate wins every time

    def test_gamble_mode_gets_caught(self):
        from repro.agents.plans import plan as mkplan

        n = 48
        colors = two_color_split(n, 0.75)
        blues = [i for i, c in enumerate(colors) if c == "blue"]
        caught = 0
        for s in range(4):
            cfg = ProtocolConfig(
                colors=colors, gamma=2.5, seed=s,
                deviation=mkplan("pooled_gamble", frozenset(blues[:2])),
            )
            res = run_protocol(cfg)
            if res.outcome is None:
                caught += 1
        assert caught == 4  # altering an exposed/honest vote always detected


class TestVoteSwitch:
    def test_switched_votes_detected_when_relevant(self):
        fails = 0
        wins = 0
        for s in range(6):
            res = run_with("vote_switch", {0}, seed=s)
            fails += res.outcome is None
            wins += res.outcome == "blue"
        # Switched votes sit in ~q certificates out of n; when the winner
        # carries one, the run fails. Over 6 runs we expect a mix but
        # never a systematic blue advantage.
        assert wins <= 2
