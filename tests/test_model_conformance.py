"""Model-conformance tests: the simulation obeys the GOSSIP model.

These white-box tests replay full protocol runs with tracing enabled and
check, from the trace alone, that every agent — honest, faulty and
deviating — stayed within the paper's communication model, and that the
protocol used each phase exactly as Algorithm 1 prescribes.
"""

from __future__ import annotations

from collections import Counter, defaultdict

import pytest

from repro.agents.plans import plan
from repro.core.agent import TOPIC_CERTIFICATE, TOPIC_INTENTION
from repro.core.params import Phase
from repro.core.protocol import ProtocolConfig, run_protocol
from tests.conftest import two_color_split


def traced_run(n=32, gamma=2.0, seed=3, strategy=None, members=frozenset(),
               faulty=frozenset()):
    colors = two_color_split(n, 0.75)
    deviation = plan(strategy, members) if strategy else None
    cfg = ProtocolConfig(colors=colors, gamma=gamma, seed=seed,
                         faulty=faulty, deviation=deviation,
                         collect_trace=True)
    res = run_protocol(cfg)
    return res, res.extras["trace"], res.extras["params"]


class TestOneActiveOperationPerRound:
    @pytest.mark.parametrize("strategy,members", [
        (None, frozenset()),
        ("underbid_alter", frozenset({0})),
        ("pooled", frozenset({0, 1})),
        ("griefing", frozenset({0})),
    ])
    def test_no_agent_initiates_twice_in_a_round(self, strategy, members):
        _res, trace, _params = traced_run(strategy=strategy, members=members)
        initiated: Counter = Counter()
        for e in trace:
            if e.kind == "push":
                initiated[(e.rnd, e.src)] += 1
            elif e.kind == "pull_request":
                initiated[(e.rnd, e.src)] += 1
        assert all(v == 1 for v in initiated.values())

    def test_faulty_agents_never_initiate(self):
        faulty = frozenset({1, 5, 9})
        _res, trace, _params = traced_run(faulty=faulty, gamma=3.0)
        initiators = {e.src for e in trace
                      if e.kind in ("push", "pull_request")}
        assert not (initiators & faulty)

    def test_faulty_agents_never_reply(self):
        faulty = frozenset({1, 5, 9})
        _res, trace, _params = traced_run(faulty=faulty, gamma=3.0)
        repliers = {e.src for e in trace if e.kind == "pull_reply"}
        assert not (repliers & faulty)


class TestPhaseDiscipline:
    def test_honest_phase_traffic_shapes(self):
        """Pulls in Commitment/Find-Min, pushes in Voting/Coherence."""
        _res, trace, params = traced_run()
        for e in trace:
            if e.kind not in ("push", "pull_request"):
                continue
            phase, _ = params.phase_of(e.rnd)
            if e.kind == "pull_request":
                assert phase in (Phase.COMMITMENT, Phase.FIND_MIN), e
                expected_topic = (TOPIC_INTENTION
                                  if phase is Phase.COMMITMENT
                                  else TOPIC_CERTIFICATE)
                assert e.detail == expected_topic
            else:
                assert phase in (Phase.VOTING, Phase.COHERENCE), e

    def test_every_honest_agent_acts_every_round(self):
        n = 32
        res, trace, params = traced_run(n=n)
        per_round = defaultdict(set)
        for e in trace:
            if e.kind in ("push", "pull_request"):
                per_round[e.rnd].add(e.src)
        for rnd in range(params.total_rounds):
            assert per_round[rnd] == set(range(n)), f"round {rnd}"
        assert res.succeeded

    def test_vote_pushes_match_intentions(self):
        """Every Voting push by an honest agent equals the declared slot."""
        res, trace, params = traced_run()
        nodes = res.extras["nodes"]
        for e in trace.of_kind("push"):
            phase, idx = params.phase_of(e.rnd)
            if phase is not Phase.VOTING:
                continue
            agent = nodes[e.src]
            planned = agent.intention[idx]
            assert e.dst == planned.target
            assert e.detail.value == planned.value


class TestSecureChannels:
    def test_all_commitment_replies_carry_true_intention(self):
        """What u stores about v is exactly what v's node object holds —
        labels cannot be spoofed, so ledgers are trustworthy."""
        res, trace, params = traced_run()
        nodes = res.extras["nodes"]
        for e in trace.of_kind("pull_reply"):
            phase, _ = params.phase_of(e.rnd)
            if phase is not Phase.COMMITMENT:
                continue
            # e.src answered e.dst: the payload must be src's intention.
            assert e.detail.intention == nodes[e.src].intention

    def test_message_conservation(self):
        """Metrics agree with the trace event counts."""
        res, trace, _params = traced_run()
        m = res.metrics
        assert m.pushes == len(trace.of_kind("push"))
        assert m.pull_requests == len(trace.of_kind("pull_request"))
        assert m.pull_replies == len(trace.of_kind("pull_reply"))


class TestDeviantsAreModelBound:
    """Even attackers cannot exceed the model's communication budget."""

    @pytest.mark.parametrize("strategy", [
        "underbid_alter", "equivocate", "vote_switch", "pooled",
        "griefing", "pretend_faulty", "findmin_suppress",
    ])
    def test_deviant_message_budget(self, strategy):
        res, trace, params = traced_run(strategy=strategy,
                                        members=frozenset({0, 1}))
        ops = Counter()
        for e in trace:
            if e.kind in ("push", "pull_request") and e.src in (0, 1):
                ops[(e.rnd, e.src)] += 1
        # At most one active op per member per round.
        assert all(v == 1 for v in ops.values())
        # And never more total rounds than the schedule.
        assert not ops or max(rnd for rnd, _ in ops) < params.total_rounds
