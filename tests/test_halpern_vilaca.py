"""Tests for the Halpern–Vilaça-style LOCAL baseline."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.baselines.halpern_vilaca import run_halpern_vilaca
from tests.conftest import two_color_split


class TestCrashFree:
    def test_everyone_counted(self):
        colors = two_color_split(24, 0.5)
        res = run_halpern_vilaca(colors, seed=1)
        assert res.counted == tuple(range(24))
        assert res.crashed == ()
        assert res.outcome in {"red", "blue"}
        assert colors[res.winner] == res.outcome

    def test_quadratic_messages(self):
        n = 30
        res = run_halpern_vilaca(two_color_split(n, 0.5), seed=2)
        assert res.messages == 2 * n * (n - 1)

    def test_two_rounds(self):
        res = run_halpern_vilaca(two_color_split(8, 0.5), seed=3)
        assert res.rounds == 2

    def test_deterministic(self):
        colors = two_color_split(16, 0.5)
        assert run_halpern_vilaca(colors, seed=4) == \
            run_halpern_vilaca(colors, seed=4)

    def test_fairness_shape(self):
        colors = two_color_split(20, 0.7)
        wins = Counter(
            run_halpern_vilaca(colors, seed=s).outcome for s in range(300)
        )
        assert 0.6 < wins["red"] / 300 < 0.8


class TestRandomCrashes:
    def test_crashed_agents_not_counted(self):
        colors = two_color_split(32, 0.5)
        res = run_halpern_vilaca(colors, seed=5, crash_probability=0.3)
        assert not (set(res.counted) & set(res.crashed))

    def test_winner_among_counted(self):
        for s in range(10):
            res = run_halpern_vilaca(
                two_color_split(24, 0.5), seed=s, crash_probability=0.4
            )
            if res.outcome is not None:
                assert res.winner in res.counted

    def test_partial_broadcasts_discarded_consistently(self):
        """A value reaching only a prefix of receivers never decides the
        outcome unless every survivor still heard it."""
        for s in range(20):
            res = run_halpern_vilaca(
                two_color_split(16, 0.5), seed=s, crash_probability=0.5
            )
            for u in res.crashed:
                assert u not in res.counted

    def test_initially_faulty_excluded(self):
        colors = two_color_split(20, 0.5)
        res = run_halpern_vilaca(
            colors, seed=6, initially_faulty=frozenset(range(5))
        )
        assert all(u >= 5 for u in res.counted)
        assert res.winner >= 5

    def test_heavy_crashes_may_fail(self):
        # With extreme crash probability the counted set can be empty;
        # the protocol then reports ⊥ rather than inventing a winner.
        outcomes = [
            run_halpern_vilaca(
                two_color_split(8, 0.5), seed=s, crash_probability=0.9
            ).outcome
            for s in range(30)
        ]
        assert None in outcomes or len(set(outcomes)) >= 1  # well-defined


class TestValidation:
    def test_too_small(self):
        with pytest.raises(ValueError):
            run_halpern_vilaca(["x"])

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            run_halpern_vilaca(["a", "b"], crash_probability=1.0)

    def test_all_faulty(self):
        with pytest.raises(ValueError):
            run_halpern_vilaca(
                ["a", "b"], initially_faulty=frozenset({0, 1})
            )
