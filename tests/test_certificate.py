"""Tests for certificates and their ordering/size model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.certificate import Certificate, ReceivedVote, compute_k
from repro.core.params import ProtocolParams


def votes_strategy(n: int = 32, q: int = 10, m: int = 32**3):
    vote = st.builds(
        ReceivedVote,
        voter=st.integers(min_value=0, max_value=n - 1),
        round_index=st.integers(min_value=0, max_value=q - 1),
        value=st.integers(min_value=0, max_value=m - 1),
    )
    return st.lists(vote, max_size=20)


class TestComputeK:
    def test_empty_votes_give_zero(self):
        assert compute_k([], m=1000) == 0

    def test_sum_mod_m(self):
        votes = [ReceivedVote(1, 0, 700), ReceivedVote(2, 1, 500)]
        assert compute_k(votes, m=1000) == 200

    @given(votes_strategy())
    @settings(max_examples=50)
    def test_property_k_in_range(self, votes):
        m = 32 ** 3
        assert 0 <= compute_k(votes, m) < m


class TestBuild:
    def test_build_computes_k_and_sorts_votes(self):
        m = 1000
        votes = [ReceivedVote(5, 2, 10), ReceivedVote(3, 0, 20)]
        cert = Certificate.build(votes, "red", owner=7, m=m)
        assert cert.k == 30
        assert cert.votes == (ReceivedVote(3, 0, 20), ReceivedVote(5, 2, 10))
        assert cert.color == "red" and cert.owner == 7

    def test_self_consistency(self):
        m = 1000
        cert = Certificate.build([ReceivedVote(1, 0, 999)], "c", 0, m)
        assert cert.is_self_consistent(m)
        forged = Certificate(k=0, votes=cert.votes, color="c", owner=0)
        assert not forged.is_self_consistent(m)

    @given(votes_strategy())
    @settings(max_examples=50)
    def test_property_build_always_self_consistent(self, votes):
        m = 32 ** 3
        cert = Certificate.build(votes, "x", 31, m)
        assert cert.is_self_consistent(m)


class TestOrdering:
    def test_sort_key_orders_by_k_then_owner(self):
        a = Certificate(5, (), "c", owner=9)
        b = Certificate(5, (), "c", owner=2)
        c = Certificate(4, (), "c", owner=9)
        assert c.sort_key < b.sort_key < a.sort_key

    def test_equality_includes_all_fields(self):
        a = Certificate(5, (), "red", 1)
        b = Certificate(5, (), "blue", 1)
        assert a != b
        assert a == Certificate(5, (), "red", 1)


class TestSize:
    def test_size_matches_params_model(self):
        p = ProtocolParams(n=64, gamma=2.0)
        votes = tuple(ReceivedVote(i, 0, i) for i in range(1, 6))
        cert = Certificate.build(votes, "c", 0, p.m)
        assert cert.size_bits(p) == p.certificate_bits(5)

    def test_more_votes_cost_more_bits(self):
        p = ProtocolParams(n=64)
        small = Certificate.build([ReceivedVote(1, 0, 1)], "c", 0, p.m)
        big = Certificate.build(
            [ReceivedVote(i, 0, 1) for i in range(1, 11)], "c", 0, p.m
        )
        assert big.size_bits(p) > small.size_bits(p)
