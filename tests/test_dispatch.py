"""Tests for the trial-batch dispatch layer (``run_trials_fast`` and
``run_deviation_trials_fast``)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.defenses import Defenses
from repro.experiments.dispatch import (
    choose_engine,
    run_deviation_trials_fast,
    run_trials_fast,
)
from repro.fastpath.batch import simulate_protocol_fast_batch
from tests.conftest import two_color_split


class TestRouting:
    def test_auto_prefers_batch(self):
        assert choose_engine(256, 1000) == "batch"
        assert choose_engine(64, 1) == "batch"
        # Giant n stays on the batch engine too: its statistical mode
        # never materialises per-pull tensors, so the process pool
        # would only multiply memory by the worker count.
        assert choose_engine(1 << 15, 10, max_chunk_elements=1000) == "batch"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_trials_fast(two_color_split(8, 0.5), [1], engine="warp")


class TestEngineAgreement:
    """Every per-trial-exact engine returns the same batch."""

    def test_process_pool_equals_parity_batch(self):
        colors = two_color_split(48, 0.5)
        seeds = list(range(14))
        batch = run_trials_fast(colors, seeds, engine="batch-parity")
        pooled = run_trials_fast(
            colors, seeds, engine="process", parallel=False
        )
        for field in ("winner", "min_votes", "max_votes", "k_collision",
                      "find_min_rounds", "total_messages", "total_bits"):
            assert np.array_equal(
                getattr(batch, field), getattr(pooled, field)
            ), field

    def test_process_pool_ragged_faults(self):
        colors = two_color_split(36, 0.5)
        seeds = list(range(6))
        faulty = [frozenset(range(i)) for i in range(6)]
        batch = run_trials_fast(
            colors, seeds, gamma=4.0, faulty=faulty, engine="batch-parity"
        )
        pooled = run_trials_fast(
            colors, seeds, gamma=4.0, faulty=faulty, engine="process",
            parallel=False,
        )
        assert np.array_equal(batch.winner, pooled.winner)
        assert np.array_equal(batch.n_active, pooled.n_active)

    def test_fault_list_length_checked(self):
        with pytest.raises(ValueError, match="fault sets"):
            run_trials_fast(
                two_color_split(8, 0.5), [1, 2], faulty=[frozenset()],
                engine="process", parallel=False,
            )


class TestAgentEngine:
    """The exact agent engine behind the same batch interface."""

    def test_agent_engine_smoke(self):
        colors = two_color_split(16, 0.5)
        batch = run_trials_fast(
            colors, list(range(5)), gamma=2.0, engine="agent",
            parallel=False,
        )
        assert batch.n_trials == 5
        assert batch.success_rate() == 1.0
        assert set(batch.outcomes()) <= {"red", "blue"}
        # Fields the agent engine does not observe are sentinel -1.
        assert (batch.find_min_rounds == -1).all()
        assert (batch.min_commitment_pulls_received == -1).all()

    def test_agent_engine_message_totals_match_fastpath(self):
        colors = two_color_split(16, 0.5)
        seeds = list(range(4))
        agent = run_trials_fast(
            colors, seeds, gamma=2.0, engine="agent", parallel=False
        )
        fast = run_trials_fast(colors, seeds, gamma=2.0,
                               engine="batch-parity")
        assert np.array_equal(agent.total_messages, fast.total_messages)

    def test_sentinels_masked_by_reducers(self):
        """Regression: the agent engine's -1 sentinels must not poison
        aggregate statistics (they used to flow straight into ``.min()``
        and means)."""
        colors = two_color_split(16, 0.5)
        agent = run_trials_fast(
            colors, list(range(5)), gamma=2.0, engine="agent",
            parallel=False,
        )
        # Raw columns are all sentinels...
        assert (agent.find_min_rounds == -1).all()
        assert int(agent.min_commitment_pulls_received.min()) == -1
        # ...but the reducers report "no observation", never -1.
        assert agent.observed_find_min_rounds().size == 0
        assert math.isnan(agent.find_min_rounds_mean())
        assert agent.min_commitment_pulls_seen() is None

    def test_reducers_on_fastpath_batches(self):
        colors = two_color_split(32, 0.5)
        batch = run_trials_fast(colors, list(range(30)), gamma=3.0)
        assert batch.observed_find_min_rounds().size > 0
        assert batch.find_min_rounds_mean() >= 1.0
        assert batch.min_commitment_pulls_seen() is not None
        assert batch.min_commitment_pulls_seen() >= 0

    def test_reducers_mask_mixed_batches(self):
        """A batch mixing observed values with sentinels (e.g. merged
        agent + fastpath trials) reduces over the observed part only."""
        colors = two_color_split(32, 0.5)
        batch = run_trials_fast(colors, list(range(10)), gamma=3.0)
        mixed = batch.find_min_rounds.copy()
        mixed[::2] = -1
        import dataclasses

        patched = dataclasses.replace(batch, find_min_rounds=mixed)
        assert (patched.observed_find_min_rounds() >= 1).all()
        expected = mixed[mixed >= 0].mean()
        assert patched.find_min_rounds_mean() == pytest.approx(expected)


class TestDeviationDispatch:
    """Routing for the paired honest/deviant workloads (E7-E9)."""

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_deviation_trials_fast(
                two_color_split(8, 0.5), [1], "silent", {4}, engine="warp"
            )

    def test_auto_routes_to_batch_strategy(self):
        colors = two_color_split(24, 0.75)
        blues = [i for i, c in enumerate(colors) if c == "blue"]
        auto = run_deviation_trials_fast(
            colors, list(range(12)), "griefing", {blues[0]}, gamma=2.5,
        )
        explicit = run_deviation_trials_fast(
            colors, list(range(12)), "griefing", {blues[0]}, gamma=2.5,
            engine="batch-strategy",
        )
        assert np.array_equal(auto.deviant.winner, explicit.deviant.winner)
        assert auto.detected.all()

    def test_agent_engine_pairs_runs_on_one_seed(self):
        colors = two_color_split(16, 0.75)
        blues = [i for i, c in enumerate(colors) if c == "blue"]
        res = run_deviation_trials_fast(
            colors, list(range(4)), "honest_shadow", {blues[0]},
            gamma=2.0, engine="agent", parallel=False,
        )
        # A do-nothing deviation on the agent engine is bit-identical
        # to its paired honest run.
        assert np.array_equal(res.honest.winner, res.deviant.winner)
        assert not res.detected.any()
        # Agent-engine batches carry the -1 sentinels...
        assert res.honest.min_commitment_pulls_seen() is None

    def test_agent_engine_defenses_honoured(self):
        colors = two_color_split(16, 0.75)
        blues = [i for i, c in enumerate(colors) if c == "blue"]
        res = run_deviation_trials_fast(
            colors, list(range(3)), "underbid_klie", {blues[0]},
            gamma=2.0, engine="agent", parallel=False,
            defenses=Defenses(verify_k=False),
        )
        assert res.deviant.success_rate() == 1.0
        assert res.forged.all()

    def test_strategy_none_is_pure_honest(self):
        colors = two_color_split(16, 0.5)
        res = run_deviation_trials_fast(colors, list(range(10)), None)
        assert np.array_equal(res.honest.winner, res.deviant.winner)
        assert not res.forged.any()


class TestStatisticalEngine:
    def test_default_engine_is_deterministic(self):
        colors = two_color_split(64, 0.5)
        seeds = list(range(40))
        a = run_trials_fast(colors, seeds)
        b = run_trials_fast(colors, seeds)
        assert np.array_equal(a.winner, b.winner)
        assert np.array_equal(a.total_bits, b.total_bits)

    def test_default_engine_matches_batch_call(self):
        colors = two_color_split(64, 0.5)
        seeds = list(range(40))
        a = run_trials_fast(colors, seeds, engine="batch")
        b = simulate_protocol_fast_batch(colors, seeds)
        assert np.array_equal(a.winner, b.winner)
