"""Tests for the trial-batch dispatch layer (``run_trials_fast``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.dispatch import choose_engine, run_trials_fast
from repro.fastpath.batch import simulate_protocol_fast_batch
from tests.conftest import two_color_split


class TestRouting:
    def test_auto_prefers_batch(self):
        assert choose_engine(256, 1000) == "batch"
        assert choose_engine(64, 1) == "batch"
        # Giant n stays on the batch engine too: its statistical mode
        # never materialises per-pull tensors, so the process pool
        # would only multiply memory by the worker count.
        assert choose_engine(1 << 15, 10, max_chunk_elements=1000) == "batch"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_trials_fast(two_color_split(8, 0.5), [1], engine="warp")


class TestEngineAgreement:
    """Every per-trial-exact engine returns the same batch."""

    def test_process_pool_equals_parity_batch(self):
        colors = two_color_split(48, 0.5)
        seeds = list(range(14))
        batch = run_trials_fast(colors, seeds, engine="batch-parity")
        pooled = run_trials_fast(
            colors, seeds, engine="process", parallel=False
        )
        for field in ("winner", "min_votes", "max_votes", "k_collision",
                      "find_min_rounds", "total_messages", "total_bits"):
            assert np.array_equal(
                getattr(batch, field), getattr(pooled, field)
            ), field

    def test_process_pool_ragged_faults(self):
        colors = two_color_split(36, 0.5)
        seeds = list(range(6))
        faulty = [frozenset(range(i)) for i in range(6)]
        batch = run_trials_fast(
            colors, seeds, gamma=4.0, faulty=faulty, engine="batch-parity"
        )
        pooled = run_trials_fast(
            colors, seeds, gamma=4.0, faulty=faulty, engine="process",
            parallel=False,
        )
        assert np.array_equal(batch.winner, pooled.winner)
        assert np.array_equal(batch.n_active, pooled.n_active)

    def test_fault_list_length_checked(self):
        with pytest.raises(ValueError, match="fault sets"):
            run_trials_fast(
                two_color_split(8, 0.5), [1, 2], faulty=[frozenset()],
                engine="process", parallel=False,
            )


class TestAgentEngine:
    """The exact agent engine behind the same batch interface."""

    def test_agent_engine_smoke(self):
        colors = two_color_split(16, 0.5)
        batch = run_trials_fast(
            colors, list(range(5)), gamma=2.0, engine="agent",
            parallel=False,
        )
        assert batch.n_trials == 5
        assert batch.success_rate() == 1.0
        assert set(batch.outcomes()) <= {"red", "blue"}
        # Fields the agent engine does not observe are sentinel -1.
        assert (batch.find_min_rounds == -1).all()
        assert (batch.min_commitment_pulls_received == -1).all()

    def test_agent_engine_message_totals_match_fastpath(self):
        colors = two_color_split(16, 0.5)
        seeds = list(range(4))
        agent = run_trials_fast(
            colors, seeds, gamma=2.0, engine="agent", parallel=False
        )
        fast = run_trials_fast(colors, seeds, gamma=2.0,
                               engine="batch-parity")
        assert np.array_equal(agent.total_messages, fast.total_messages)


class TestStatisticalEngine:
    def test_default_engine_is_deterministic(self):
        colors = two_color_split(64, 0.5)
        seeds = list(range(40))
        a = run_trials_fast(colors, seeds)
        b = run_trials_fast(colors, seeds)
        assert np.array_equal(a.winner, b.winner)
        assert np.array_equal(a.total_bits, b.total_bits)

    def test_default_engine_matches_batch_call(self):
        colors = two_color_split(64, 0.5)
        seeds = list(range(40))
        a = run_trials_fast(colors, seeds, engine="batch")
        b = simulate_protocol_fast_batch(colors, seeds)
        assert np.array_equal(a.winner, b.winner)
