"""Tests for terminal reporting helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.report import distribution_bars, ratio_bar, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_values_monotone_blocks(self):
        s = sparkline([1, 2, 4, 8])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"
        assert list(s) == sorted(s)

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_property_length_preserved(self, values):
        assert len(sparkline(values)) == len(values)


class TestDistributionBars:
    def test_renders_all_keys(self):
        out = distribution_bars({"red": 0.75, "blue": 0.25})
        assert "red" in out and "blue" in out
        assert "0.750" in out and "0.250" in out

    def test_bar_lengths_proportional(self):
        out = distribution_bars({"a": 1.0, "b": 0.5}, width=10)
        lines = {ln.split()[0]: ln.count("#") for ln in out.splitlines()}
        assert lines["a"] == 10
        assert lines["b"] == 5

    def test_empty(self):
        assert "empty" in distribution_bars({})


class TestRatioBar:
    def test_full_bar_at_reference(self):
        out = ratio_bar(10, 10, width=8)
        assert out.count("█") == 8
        assert "·" not in out.split()[0]

    def test_half_bar(self):
        out = ratio_bar(5, 10, width=8)
        assert out.count("█") == 4

    def test_overflow_clamped(self):
        out = ratio_bar(100, 10, width=8)
        assert out.count("█") == 8

    def test_label_prefix(self):
        assert ratio_bar(1, 2, label="measured").startswith("measured ")

    def test_validation(self):
        with pytest.raises(ValueError):
            ratio_bar(1, 0)
